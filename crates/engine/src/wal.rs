//! The durable write-ahead mutation log: crash safety for live deployments.
//!
//! PR 5 made deployments mutable ([`crate::Engine::mutate`]), but mutations
//! lived only in process memory — a crash lost every edit since load. This
//! module logs each mutation to an append-only file *before* it is applied,
//! so a restarted process replays the log through the normal mutate path
//! and resumes byte-identical to the acknowledged state (the PR 5 proptests
//! pin replay ≡ rebuild; `tests/wal.rs` pins recovery ≡ acknowledged
//! prefix under arbitrary kill points).
//!
//! ## Record format
//!
//! The log is a flat sequence of length-prefixed, checksummed records:
//!
//! ```text
//! ┌───────────────┬───────────────┬────────────────────────────┐
//! │ len: u32 (LE) │ crc: u32 (LE) │ payload: len bytes of JSON │
//! └───────────────┴───────────────┴────────────────────────────┘
//! ```
//!
//! The payload is the *bare mutation wire object* — the exact shape of one
//! `tfsn mutate` JSONL line (see [`crate::proto::mutation_json`]), e.g.
//! `{"op":"edge_insert","u":3,"v":9,"sign":"-"}` — so `tfsn wal export`
//! emits a stream `tfsn mutate` replays directly. The CRC is IEEE CRC-32
//! over the payload bytes.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a partial final record. [`scan`] detects it —
//! a short header, a short payload, a checksum mismatch, or an unparseable
//! payload at the end of the file — and reports it as a [`TornTail`];
//! [`Wal::open`] truncates it away instead of failing, because a torn tail
//! is the *expected* crash artifact, not corruption to refuse. Only the
//! acknowledged prefix (records whose append returned before the crash) is
//! guaranteed replayed; a complete-but-unacknowledged final record may also
//! replay — never a half-applied one.
//!
//! ## Fsync policies and failure
//!
//! [`FsyncPolicy`] trades durability for append latency: `always` fsyncs
//! every record, `batch` every [`BATCH_FSYNC_INTERVAL`] records, `off`
//! leaves flushing to the OS. Appends and fsyncs host the `wal.append` /
//! `wal.fsync` failpoints ([`crate::failpoint`]); after any append-path
//! failure the log **poisons itself** — further appends are refused — so a
//! torn write can never be followed by valid records it would then corrupt.
//! Reloading the deployment (which re-opens and truncates the log) clears
//! the condition.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use signed_graph::EdgeMutation;

use crate::failpoint;
use crate::proto;

/// Bytes of the fixed record header (`len: u32` + `crc: u32`).
pub const RECORD_HEADER_BYTES: u64 = 8;

/// Records between fsyncs under [`FsyncPolicy::Batch`].
pub const BATCH_FSYNC_INTERVAL: u64 = 32;

/// Upper bound on one record's payload. Single mutation wire objects are
/// under a hundred bytes and a full group record
/// ([`crate::proto::MAX_BATCH_MUTATIONS`] mutations) under ~64 KiB; a
/// length prefix beyond this bound is garbage (a torn or overwritten
/// header), not a record to allocate for.
pub const MAX_RECORD_BYTES: u64 = 1 << 20;

/// When the log file is fsynced relative to appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every record: an acknowledged mutation survives power
    /// loss, at one disk flush per append.
    Always,
    /// Fsync every [`BATCH_FSYNC_INTERVAL`] records: bounded loss window,
    /// amortized flush cost. The default.
    #[default]
    Batch,
    /// Never fsync: the OS flushes on its schedule. Survives process
    /// crashes (the page cache persists) but not power loss.
    Off,
}

impl FsyncPolicy {
    /// Every policy, in label order — the closure docs tests check
    /// `docs/DURABILITY.md` against.
    pub const ALL: [FsyncPolicy; 3] = [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Off];

    /// The CLI/config label (`always` / `batch` / `off`).
    pub fn label(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }

    /// Parses a label (the `--wal-fsync` flag value).
    pub fn parse(label: &str) -> Option<Self> {
        FsyncPolicy::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// IEEE CRC-32 (the Ethernet/zip polynomial), table-driven. Hand-rolled:
/// the no-registry constraint rules out the `crc` crate, and 8 lines of
/// const table beat a vendored shim.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames a payload as one log record (length prefix + CRC + payload).
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut record = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Encodes one mutation as a framed log record.
pub fn encode_record(mutation: &EdgeMutation) -> Vec<u8> {
    frame(proto::mutation_json(mutation).into_bytes())
}

/// Encodes a batch of mutations as **one** framed log record — the crash
/// atomicity unit: a scan decodes all of the group or, when the record is
/// torn, none of it, so recovery can never replay a strict prefix of a
/// batch. A batch of one encodes as the plain single-mutation record (the
/// group framing buys nothing there).
pub fn encode_batch_record(mutations: &[EdgeMutation]) -> Vec<u8> {
    debug_assert!(!mutations.is_empty(), "empty batches are never logged");
    match mutations {
        [one] => encode_record(one),
        many => frame(proto::mutation_batch_json(many).into_bytes()),
    }
}

/// A partial or corrupt final record found by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the valid prefix ends (= where truncation cuts).
    pub offset: u64,
    /// Bytes in the torn tail (`file_bytes - offset`).
    pub bytes: u64,
    /// Why the record at `offset` did not decode.
    pub reason: String,
}

/// What a [`scan`] of a log file found.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every decodable mutation, in log (= acknowledgement) order.
    pub mutations: Vec<EdgeMutation>,
    /// Bytes of the valid record prefix.
    pub valid_bytes: u64,
    /// Total bytes in the file.
    pub file_bytes: u64,
    /// The torn tail, when the file does not end on a record boundary.
    pub tail: Option<TornTail>,
}

impl WalScan {
    /// `true` when the whole file decoded as records.
    pub fn clean(&self) -> bool {
        self.tail.is_none()
    }
}

/// Reads and validates a log file without modifying it (the `tfsn wal
/// inspect` primitive). Decoding stops at the first invalid record — a
/// torn tail — which is reported, not an error; a missing file scans as
/// empty.
pub fn scan(path: &Path) -> std::io::Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let file_bytes = bytes.len() as u64;
    let mut mutations = Vec::new();
    let mut offset = 0u64;
    let tail = loop {
        let rest = &bytes[offset as usize..];
        if rest.is_empty() {
            break None;
        }
        let torn = |reason: String| TornTail {
            offset,
            bytes: file_bytes - offset,
            reason,
        };
        if (rest.len() as u64) < RECORD_HEADER_BYTES {
            break Some(torn(format!(
                "truncated record header ({} of {RECORD_HEADER_BYTES} bytes)",
                rest.len()
            )));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as u64;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            break Some(torn(format!(
                "implausible record length {len} (cap {MAX_RECORD_BYTES}); \
                 the header bytes are not a record"
            )));
        }
        let body = &rest[RECORD_HEADER_BYTES as usize..];
        if (body.len() as u64) < len {
            break Some(torn(format!(
                "truncated record payload ({} of {len} bytes)",
                body.len()
            )));
        }
        let payload = &body[..len as usize];
        let actual = crc32(payload);
        if actual != crc {
            break Some(torn(format!(
                "checksum mismatch (stored {crc:#010x}, computed {actual:#010x})"
            )));
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(e) => break Some(torn(format!("record payload is not UTF-8: {e}"))),
        };
        // Group records flatten into the mutation stream: sequence numbers
        // are mutation positions, not record positions, so `wal_pull`
        // cursors and follower replay never see group boundaries — only
        // crash recovery does (a torn group drops whole).
        match proto::parse_mutation_group_json(text) {
            Ok(group) => mutations.extend(group),
            Err(e) => break Some(torn(format!("unparseable record payload: {e}"))),
        }
        offset += RECORD_HEADER_BYTES + len;
    };
    Ok(WalScan {
        mutations,
        valid_bytes: offset,
        file_bytes,
        tail,
    })
}

/// Positional slice of a scanned log: records `[from_seq, from_seq+max)`,
/// clamped to what the log holds. Sequence numbers are 0-based record
/// positions — record `i` of [`WalScan::mutations`] has sequence `i` — so
/// the same slice rule serves the `wal_pull` protocol op and `tfsn wal
/// export --from-seq/--max`.
pub fn slice(mutations: &[EdgeMutation], from_seq: u64, max: Option<u64>) -> &[EdgeMutation] {
    let end = mutations.len();
    let start = (from_seq.min(end as u64)) as usize;
    let stop = match max {
        Some(m) => start.saturating_add(m.min(end as u64) as usize).min(end),
        None => end,
    };
    &mutations[start..stop]
}

/// Truncates `path`'s torn tail in place (the `tfsn wal truncate`
/// primitive). Returns the scan that decided the cut; a clean file is left
/// untouched.
pub fn truncate_torn_tail(path: &Path) -> std::io::Result<WalScan> {
    let scan = scan(path)?;
    if scan.tail.is_some() {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.sync_data()?;
    }
    Ok(scan)
}

/// Receipt of one durable append, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Framed bytes written (header + payload).
    pub bytes: u64,
    /// Whether this append flushed to disk (per the [`FsyncPolicy`]).
    pub fsynced: bool,
    /// Wall-clock fsync time when `fsynced`, microseconds.
    pub fsync_micros: u64,
}

#[derive(Debug)]
struct WalState {
    file: File,
    /// Appends since the last fsync (drives [`FsyncPolicy::Batch`]).
    pending: u64,
    /// After an append-path failure the log refuses further appends until
    /// re-opened: a torn write followed by valid records would make the
    /// tail look like mid-file corruption instead of a crash artifact.
    poisoned: bool,
}

/// An open, append-only mutation log. `Sync`: appends serialize on an
/// internal lock (the engine additionally orders append-before-apply under
/// its own write lock — see [`crate::Engine::mutate`]).
///
/// # Examples
///
/// ```
/// use signed_graph::{EdgeMutation, NodeId, Sign};
/// use tfsn_engine::wal::{self, FsyncPolicy, Wal};
///
/// let path = std::env::temp_dir().join(format!("tfsn-wal-doc-{}.wal", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
/// let (wal, scan) = Wal::open(&path, FsyncPolicy::Always).unwrap();
/// assert!(scan.mutations.is_empty() && scan.clean());
/// wal.append(&EdgeMutation::Insert {
///     u: NodeId::new(1),
///     v: NodeId::new(2),
///     sign: Sign::Positive,
/// })
/// .unwrap();
/// drop(wal);
///
/// // A fresh open replays what was acknowledged.
/// let (_wal, scan) = Wal::open(&path, FsyncPolicy::Always).unwrap();
/// assert_eq!(scan.mutations.len(), 1);
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    policy: FsyncPolicy,
    state: parking_lot::Mutex<WalState>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending, after
    /// truncating any torn tail. The returned [`WalScan`] carries the
    /// mutations to replay, in acknowledgement order.
    pub fn open(path: &Path, policy: FsyncPolicy) -> std::io::Result<(Wal, WalScan)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let scan = scan(path)?;
        // truncate(false): the valid prefix must survive; the torn tail is
        // cut precisely with set_len below.
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if scan.file_bytes > scan.valid_bytes {
            file.set_len(scan.valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_bytes))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                policy,
                state: parking_lot::Mutex::new(WalState {
                    file,
                    pending: 0,
                    poisoned: false,
                }),
                appends: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
            },
            scan,
        ))
    }

    /// Appends one mutation record, fsyncing per the policy. On any
    /// failure the log poisons itself (see the module docs) and the
    /// mutation must not be applied.
    pub fn append(&self, mutation: &EdgeMutation) -> std::io::Result<AppendReceipt> {
        let record = encode_record(mutation);
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(std::io::Error::other(format!(
                "write-ahead log {} poisoned by an earlier failed append; \
                 reload the deployment to truncate and recover",
                self.path.display()
            )));
        }
        let result = Self::append_locked(&mut state, self.policy, &record);
        match result {
            Ok(receipt) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                if receipt.fsynced {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(receipt)
            }
            Err(e) => {
                state.poisoned = true;
                Err(e)
            }
        }
    }

    /// Appends a batch of mutations as **one** atomic group record (one
    /// write, one fsync decision), fsyncing per the policy. The append
    /// counter advances by the number of *mutations* — sequence numbers
    /// count mutations, not frames — and the failure contract matches
    /// [`Wal::append`]: on any error the log poisons itself and none of
    /// the batch may be applied.
    pub fn append_batch(&self, mutations: &[EdgeMutation]) -> std::io::Result<AppendReceipt> {
        let record = encode_batch_record(mutations);
        let mut state = self.state.lock();
        if state.poisoned {
            return Err(std::io::Error::other(format!(
                "write-ahead log {} poisoned by an earlier failed append; \
                 reload the deployment to truncate and recover",
                self.path.display()
            )));
        }
        let result = Self::append_locked(&mut state, self.policy, &record);
        match result {
            Ok(receipt) => {
                self.appends
                    .fetch_add(mutations.len() as u64, Ordering::Relaxed);
                if receipt.fsynced {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(receipt)
            }
            Err(e) => {
                state.poisoned = true;
                Err(e)
            }
        }
    }

    fn append_locked(
        state: &mut WalState,
        policy: FsyncPolicy,
        record: &[u8],
    ) -> std::io::Result<AppendReceipt> {
        match failpoint::take("wal.append") {
            None => {}
            Some(failpoint::Action::Delay(d)) => std::thread::sleep(d),
            Some(failpoint::Action::Error) => {
                return Err(std::io::Error::other(format!(
                    "{} `wal.append`",
                    failpoint::INJECTED
                )));
            }
            Some(failpoint::Action::ShortWrite(n)) => {
                // The torn write a crash mid-write(2) leaves: part of the
                // record lands, then the "process dies" (the error).
                state.file.write_all(&record[..n.min(record.len())])?;
                return Err(std::io::Error::other(format!(
                    "{} `wal.append` (short write of {n} bytes)",
                    failpoint::INJECTED
                )));
            }
        }
        state.file.write_all(record)?;
        state.pending += 1;
        let flush = match policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch => state.pending >= BATCH_FSYNC_INTERVAL,
            FsyncPolicy::Off => false,
        };
        let (fsynced, fsync_micros) = if flush {
            failpoint::hit("wal.fsync")?;
            let started = Instant::now();
            state.file.sync_data()?;
            state.pending = 0;
            (true, started.elapsed().as_micros() as u64)
        } else {
            (false, 0)
        };
        Ok(AppendReceipt {
            bytes: record.len() as u64,
            fsynced,
            fsync_micros,
        })
    }

    /// Forces an fsync of any batched-but-unflushed records.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut state = self.state.lock();
        if state.pending > 0 {
            state.file.sync_data()?;
            state.pending = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Records appended through this handle (replay is not counted).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Fsyncs performed by this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// `true` once an append failed and the log refuses further appends.
    pub fn poisoned(&self) -> bool {
        self.state.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signed_graph::{NodeId, Sign};

    fn tmp(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("tfsn-wal-unit-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn insert(u: usize, v: usize) -> EdgeMutation {
        EdgeMutation::Insert {
            u: NodeId::new(u),
            v: NodeId::new(v),
            sign: if (u + v).is_multiple_of(2) {
                Sign::Positive
            } else {
                Sign::Negative
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_round_trips_in_order() {
        let path = tmp("roundtrip");
        let (wal, scan0) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(scan0.file_bytes, 0);
        let mutations: Vec<EdgeMutation> = (0..10).map(|i| insert(i, i + 1)).collect();
        for m in &mutations {
            let receipt = wal.append(m).unwrap();
            assert!(receipt.fsynced, "policy always fsyncs every append");
        }
        assert_eq!(wal.appends(), 10);
        assert_eq!(wal.fsyncs(), 10);
        let scan = scan(&path).unwrap();
        assert!(scan.clean());
        assert_eq!(scan.mutations, mutations, "log order = append order");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_policy_fsyncs_on_interval() {
        let path = tmp("batchsync");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Batch).unwrap();
        for i in 0..(BATCH_FSYNC_INTERVAL as usize * 2) {
            wal.append(&insert(i, i + 1)).unwrap();
        }
        assert_eq!(wal.fsyncs(), 2, "one fsync per full interval");
        wal.append(&insert(99, 100)).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 3, "explicit sync flushes the remainder");
        wal.sync().unwrap();
        assert_eq!(wal.fsyncs(), 3, "sync with nothing pending is free");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_are_detected_and_truncated_at_every_offset() {
        let path = tmp("torn");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        let mutations: Vec<EdgeMutation> = (0..6).map(|i| insert(i, i + 2)).collect();
        let mut boundaries = vec![0u64];
        for m in &mutations {
            let receipt = wal.append(m).unwrap();
            boundaries.push(boundaries.last().unwrap() + receipt.bytes);
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, *boundaries.last().unwrap());
        // Cut the file at every possible byte offset: the scan must keep
        // exactly the records whose boundary is at or before the cut.
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan(&path).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(scan.mutations.len(), whole, "cut at {cut}");
            assert_eq!(scan.mutations, mutations[..whole], "cut at {cut}");
            assert_eq!(scan.valid_bytes, boundaries[whole], "cut at {cut}");
            assert_eq!(scan.clean(), boundaries.contains(&(cut as u64)));
            // Truncation repairs in place; a re-scan is then clean.
            let repaired = truncate_torn_tail(&path).unwrap();
            assert_eq!(repaired.valid_bytes, boundaries[whole]);
            let rescan = super::scan(&path).unwrap();
            assert!(rescan.clean(), "cut at {cut} must repair cleanly");
            assert_eq!(rescan.mutations.len(), whole);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_records_flatten_in_order_and_tear_whole() {
        let path = tmp("batch");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&insert(0, 1)).unwrap();
        let group: Vec<EdgeMutation> = (1..5).map(|i| insert(i, i + 1)).collect();
        let receipt = wal.append_batch(&group).unwrap();
        assert_eq!(wal.appends(), 5, "appends count mutations, not frames");
        drop(wal);
        let full_scan = scan(&path).unwrap();
        assert!(full_scan.clean());
        assert_eq!(
            full_scan.mutations.len(),
            5,
            "groups flatten into the stream"
        );
        assert_eq!(full_scan.mutations[1..], group);
        // Cut anywhere inside the group record: the whole group drops —
        // never a prefix of its mutations.
        let full = std::fs::read(&path).unwrap();
        let group_start = full.len() - receipt.bytes as usize;
        for cut in group_start..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let s = scan(&path).unwrap();
            assert_eq!(s.mutations.len(), 1, "cut at {cut}: all-or-none");
            assert_eq!(s.valid_bytes, group_start as u64, "cut at {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_of_one_encodes_as_a_plain_record() {
        let m = insert(7, 9);
        assert_eq!(
            encode_batch_record(std::slice::from_ref(&m)),
            encode_record(&m),
            "single-mutation batches keep the bare framing"
        );
    }

    #[test]
    fn checksum_mismatch_stops_the_scan() {
        let path = tmp("crc");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&insert(0, 1)).unwrap();
        let second = wal.append(&insert(1, 2)).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the *last* record: scan keeps record 1,
        // reports the tail.
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(scan.mutations.len(), 1);
        assert_eq!(scan.file_bytes - scan.valid_bytes, second.bytes);
        let tail = scan.tail.expect("corrupt tail detected");
        assert!(tail.reason.contains("checksum mismatch"), "{}", tail.reason);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_truncates_and_appends_after_the_valid_prefix() {
        let path = tmp("reopen");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&insert(0, 1)).unwrap();
        wal.append(&insert(1, 2)).unwrap();
        drop(wal);
        // Simulate a crash mid-append: 3 stray bytes of a fourth record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x2A, 0x00, 0x00]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, scan) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.mutations.len(), 2);
        assert!(!scan.clean());
        wal.append(&insert(2, 3)).unwrap();
        drop(wal);
        let rescan = super::scan(&path).unwrap();
        assert!(rescan.clean(), "append lands on the truncated boundary");
        assert_eq!(rescan.mutations.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn failed_append_poisons_until_reopen() {
        let path = tmp("poison");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        wal.append(&insert(0, 1)).unwrap();
        failpoint::arm("wal.append", failpoint::Action::ShortWrite(5), 1);
        let err = wal.append(&insert(1, 2)).unwrap_err();
        assert!(failpoint::is_injected(&err), "{err}");
        // Poisoned: even a healthy append is refused now.
        let err = wal.append(&insert(2, 3)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(wal.poisoned());
        drop(wal);
        // Reopen recovers: the torn 5 bytes truncate away.
        let (wal, scan) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        assert_eq!(scan.mutations.len(), 1);
        assert!(!scan.clean());
        wal.append(&insert(3, 4)).unwrap();
        assert!(!wal.poisoned());
        std::fs::remove_file(&path).unwrap();
        failpoint::reset();
    }
}
