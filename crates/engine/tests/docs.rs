//! Documentation anti-rot checks:
//!
//! * every request `op` label and every typed error code the build can
//!   emit must appear in `docs/PROTOCOL.md` (so a protocol change cannot
//!   ship undocumented);
//! * `docs/ARCHITECTURE.md` must keep describing the invalidation rules
//!   and shutdown surface it anchors;
//! * `docs/DURABILITY.md` must keep covering every fsync policy and the
//!   WAL/deadline/shedding surface;
//! * local markdown links in README/ROADMAP/docs must resolve to files
//!   that exist.

use std::path::{Path, PathBuf};

use tfsn_core::compat::CompatibilityKind;
use tfsn_engine::{AnswerStatus, Objective, RequestBody, ServiceError};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn protocol_doc_covers_every_op_error_status_and_kind() {
    let doc = read("docs/PROTOCOL.md");
    for op in RequestBody::ALL_OPS {
        assert!(
            doc.contains(&format!("`{op}`")),
            "docs/PROTOCOL.md is missing request op `{op}` — document it \
             (every op in RequestBody::ALL_OPS must appear)"
        );
    }
    for code in ServiceError::ALL_CODES {
        assert!(
            doc.contains(&format!("`{code}`")),
            "docs/PROTOCOL.md is missing error code `{code}` — document it \
             (every code in ServiceError::ALL_CODES must appear, with its \
             HTTP status mapping)"
        );
    }
    for status in AnswerStatus::ALL {
        assert!(
            doc.contains(&format!("`{}`", status.label())),
            "docs/PROTOCOL.md is missing answer status `{}`",
            status.label()
        );
    }
    for kind in CompatibilityKind::ALL {
        assert!(
            doc.contains(&format!("`{}`", kind.label())),
            "docs/PROTOCOL.md is missing relation kind `{}`",
            kind.label()
        );
    }
    for objective in Objective::ALL_LABELS {
        assert!(
            doc.contains(&format!("`{objective}`")),
            "docs/PROTOCOL.md is missing team objective `{objective}` — \
             document it (every label in Objective::ALL_LABELS must appear)"
        );
    }
}

#[test]
fn architecture_doc_keeps_its_anchors() {
    let doc = read("docs/ARCHITECTURE.md");
    // The invalidation rule table names every kind and the predicate.
    for kind in CompatibilityKind::ALL {
        assert!(
            doc.contains(&format!("`{}`", kind.label())),
            "docs/ARCHITECTURE.md is missing the invalidation rule for {}",
            kind.label()
        );
    }
    for objective in Objective::ALL_LABELS {
        assert!(
            doc.contains(&format!("`{objective}`")),
            "docs/ARCHITECTURE.md is missing team objective `{objective}` — \
             the objective layer section must name every label"
        );
    }
    for anchor in [
        "row_affected_by_edge",
        "ShutdownHandle",
        "CompatRow",
        "mutations_applied",
        "rows_invalidated",
        "LazyCompatibility",
        "RelationStore",
        "Objective",
        "repair_row",
        "rows_repaired",
        "mutate_batch",
    ] {
        assert!(
            doc.contains(anchor),
            "docs/ARCHITECTURE.md lost its `{anchor}` section"
        );
    }
}

#[test]
fn observability_doc_covers_every_axis_label() {
    let doc = read("docs/OBSERVABILITY.md");
    for op in tfsn_engine::telemetry::Op::ALL {
        assert!(
            doc.contains(&format!("`{}`", op.label())),
            "docs/OBSERVABILITY.md is missing operation label `{}`",
            op.label()
        );
    }
    for phase in tfsn_engine::telemetry::Phase::ALL {
        assert!(
            doc.contains(&format!("`{}`", phase.label())),
            "docs/OBSERVABILITY.md is missing phase label `{}`",
            phase.label()
        );
    }
    for kind in CompatibilityKind::ALL {
        assert!(
            doc.contains(&format!("`{}`", kind.label())),
            "docs/OBSERVABILITY.md is missing relation kind `{}`",
            kind.label()
        );
    }
    for objective in Objective::ALL_LABELS {
        assert!(
            doc.contains(&format!("`{objective}`")),
            "docs/OBSERVABILITY.md is missing objective label `{objective}`"
        );
    }
    for anchor in [
        "tfsn_op_latency_seconds",
        "tfsn_phase_latency_seconds",
        "tfsn_kind_queries_total",
        "tfsn_objective_queries_total",
        "slow-query log",
        "query_p50_micros",
        "+Inf",
        "wait_micros",
    ] {
        assert!(
            doc.contains(anchor),
            "docs/OBSERVABILITY.md lost its `{anchor}` section"
        );
    }
}

#[test]
fn durability_doc_covers_wal_and_overload_surface() {
    let doc = read("docs/DURABILITY.md");
    for policy in tfsn_engine::FsyncPolicy::ALL {
        assert!(
            doc.contains(&format!("`{}`", policy.label())),
            "docs/DURABILITY.md is missing fsync policy `{}` — every policy \
             in FsyncPolicy::ALL must be documented",
            policy.label()
        );
    }
    for anchor in [
        "torn tail",
        "--wal-dir",
        "--wal-fsync",
        "--max-inflight",
        "--admission-queue",
        "tfsn wal export",
        "tfsn_wal_appends_total",
        "tfsn_wal_fsync_micros",
        "tfsn_requests_shed_total",
        "tfsn_client_retries_total",
        "Retry-After",
        "deadline_ms",
        "deadline_exceeded",
        "overloaded",
        "wal.append",
        "wal.fsync",
        "server.write",
        "CRC-32",
        "never half-applied",
        "mutate_batch",
        "whole group",
    ] {
        assert!(
            doc.contains(anchor),
            "docs/DURABILITY.md lost its `{anchor}` section"
        );
    }
}

#[test]
fn cluster_doc_covers_topology_routing_and_replication() {
    let doc = read("docs/CLUSTER.md");
    // The routing-rules table must keep naming every primary-only op the
    // router sniffs out of /v1/rpc bodies — a new mutation op that is not
    // documented here is a routing hazard, not just a docs gap.
    for op in [
        "edge_insert",
        "edge_remove",
        "edge_set_sign",
        "mutate_batch",
        "wal_pull",
    ] {
        assert!(
            doc.contains(&format!("`{op}`")),
            "docs/CLUSTER.md routing rules lost primary-only op `{op}`"
        );
    }
    for anchor in [
        "--backend",
        "--listen",
        "--probe-ms",
        "--fail-after",
        "--affinity",
        "--follow",
        "--poll-ms",
        "from_seq",
        "next_seq",
        "end_seq",
        "replicated_seq",
        "no_backend",
        "Retry-After",
        "GET /v1/wal",
        "/v1/topology",
        "round-robin",
        "log-less",
        "append-before-apply",
        "kill -9",
    ] {
        assert!(
            doc.contains(anchor),
            "docs/CLUSTER.md lost its `{anchor}` section"
        );
    }
}

/// Extracts `](target)` markdown link targets, skipping external URLs and
/// pure in-page fragments.
fn local_links(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = markdown[i + 2..].find(')') {
                let target = &markdown[i + 2..i + 2 + end];
                let target = target.split(['#', ' ']).next().unwrap_or("");
                if !target.is_empty()
                    && !target.starts_with("http://")
                    && !target.starts_with("https://")
                    && !target.starts_with("mailto:")
                {
                    out.push(target.to_string());
                }
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn readme_roadmap_and_docs_links_resolve() {
    for file in [
        "README.md",
        "ROADMAP.md",
        "docs/PROTOCOL.md",
        "docs/ARCHITECTURE.md",
        "docs/OBSERVABILITY.md",
        "docs/DURABILITY.md",
        "docs/CLUSTER.md",
    ] {
        let content = read(file);
        let base = repo_root().join(file);
        let dir = base.parent().expect("file has a parent");
        let links = local_links(&content);
        for link in &links {
            let resolved = dir.join(link);
            assert!(
                resolved.exists(),
                "{file}: link `{link}` does not resolve ({} missing)",
                resolved.display()
            );
        }
        if file == "README.md" {
            assert!(
                links.iter().any(|l| l.ends_with("docs/PROTOCOL.md")),
                "README.md must link docs/PROTOCOL.md"
            );
            assert!(
                links.iter().any(|l| l.ends_with("docs/ARCHITECTURE.md")),
                "README.md must link docs/ARCHITECTURE.md"
            );
            assert!(
                links.iter().any(|l| l.ends_with("docs/OBSERVABILITY.md")),
                "README.md must link docs/OBSERVABILITY.md"
            );
            assert!(
                links.iter().any(|l| l.ends_with("docs/DURABILITY.md")),
                "README.md must link docs/DURABILITY.md"
            );
            assert!(
                links.iter().any(|l| l.ends_with("docs/CLUSTER.md")),
                "README.md must link docs/CLUSTER.md"
            );
        }
    }
}
