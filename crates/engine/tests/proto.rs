//! Property tests for the versioned service protocol: every
//! `Request`/`Response` variant — error envelopes included — survives
//! serialize → parse bit-for-bit, unknown protocol versions are rejected
//! with the typed error, and the answer-status labels are closed under
//! `parse(label(..))`.

use proptest::prelude::*;
use tfsn_core::compat::CompatibilityKind;
use tfsn_core::team::greedy::GreedyConfig;
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::Solver;
use tfsn_datasets::DatasetStats;
use tfsn_engine::proto::{DeploymentInfo, DeploymentMetrics, DeploymentStats, ServingPlan};
use tfsn_engine::{
    AnswerStatus, MetricsSnapshot, Request, RequestBody, Response, ServiceError, TeamAnswer,
    TeamQuery, PROTOCOL_VERSION,
};

// ---------------------------------------------------------------------------
// Strategies (the vendored proptest has no oneof/Just; index-mapping over
// small ranges plays the same role).
// ---------------------------------------------------------------------------

const NAMES: [&str; 5] = ["sd", "epinions", "tiny", "prod-us", "wiki"];

fn kind(i: usize) -> CompatibilityKind {
    CompatibilityKind::ALL[i % CompatibilityKind::ALL.len()]
}

fn solver(i: usize, max_seeds: usize) -> Solver {
    if i == 5 {
        Solver::Exhaustive
    } else {
        Solver::Greedy {
            algorithm: TeamAlgorithm::ALL[i % TeamAlgorithm::ALL.len()],
            config: GreedyConfig {
                max_seeds: (max_seeds > 0).then_some(max_seeds),
                ..Default::default()
            },
        }
    }
}

fn query((task, k, s, id): (Vec<usize>, usize, (usize, usize), usize)) -> TeamQuery {
    TeamQuery {
        id: (id > 0).then_some(id as u64),
        task,
        kind: kind(k),
        solver: solver(s.0 % 6, s.1),
        objective: None,
    }
}

fn query_strategy() -> impl Strategy<Value = TeamQuery> {
    (
        prop::collection::vec(0usize..900, 0..6),
        0usize..16,
        (0usize..6, 0usize..40),
        0usize..100,
    )
        .prop_map(query)
}

#[allow(clippy::type_complexity)]
fn answer(
    (members, k, (status, id, diameter), (micros, build, hit)): (
        Vec<usize>,
        usize,
        (usize, usize, u32),
        (u64, u64, bool),
    ),
) -> TeamAnswer {
    let status = AnswerStatus::ALL[status % AnswerStatus::ALL.len()];
    TeamAnswer {
        id: (id > 0).then_some(id as u64),
        status,
        kind: kind(k),
        algorithm: ["LCMD", "RFMC", "EXHAUSTIVE"][k % 3].to_string(),
        cardinality: members.len(),
        members,
        diameter: (diameter > 0).then_some(diameter),
        micros,
        build_micros: build.min(micros),
        cache_hit: hit,
        objective: None,
        score: None,
    }
}

fn answer_strategy() -> impl Strategy<Value = TeamAnswer> {
    (
        prop::collection::vec(0usize..5000, 0..8),
        0usize..16,
        (0usize..4, 0usize..50, 0u32..6),
        (0u64..100_000, 0u64..100_000, prop::bool::ANY),
    )
        .prop_map(answer)
}

fn error((variant, n, detail_len): (usize, u64, usize)) -> ServiceError {
    let name = NAMES[n as usize % NAMES.len()].to_string();
    match variant % 7 {
        0 => ServiceError::UnsupportedVersion {
            requested: n,
            supported: PROTOCOL_VERSION,
        },
        1 => ServiceError::UnknownDeployment {
            name,
            available: NAMES[..detail_len % (NAMES.len() + 1)]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
        2 => ServiceError::UnknownOp { op: name },
        3 => ServiceError::BadRequest {
            detail: format!("line {n}: {}", "x".repeat(detail_len)),
        },
        4 => ServiceError::TooLarge { limit_bytes: n },
        5 => ServiceError::Overloaded { max_connections: n },
        _ => ServiceError::Internal {
            detail: format!("fault {n}"),
        },
    }
}

#[allow(clippy::type_complexity)]
fn metrics((a, b): ((u64, u64, u64, u64), (u64, u64, u64, u64))) -> MetricsSnapshot {
    MetricsSnapshot {
        queries_served: a.0,
        queries_solved: a.1,
        cache_hits: a.2,
        cache_misses: a.3,
        busy_micros: b.0,
        build_wait_micros: b.1,
        matrix_builds: b.2,
        row_builds: b.3,
        row_evictions: a.0 % 7,
        resident_rows: a.1 % 11,
        resident_bytes: b.0 % 4096,
        mutations_applied: a.2 % 13,
        rows_invalidated: a.3 % 29,
        // Exercise both the absent (pre-telemetry) and present shapes.
        query_p50_micros: (a.0 % 2 == 0).then_some(b.1 % 997),
        query_p90_micros: (a.1 % 2 == 0).then_some(b.2 % 2039),
        query_p99_micros: (a.2 % 2 == 0).then_some(b.3 % 4093),
        query_p999_micros: (a.3 % 2 == 0).then_some(b.0 % 8191),
        query_max_micros: (b.0 % 2 == 0).then_some(b.1 % 16381),
    }
}

fn stats((users, edges, skills, f): (usize, usize, usize, f64)) -> DeploymentStats {
    DeploymentStats {
        dataset: DatasetStats {
            name: NAMES[users % NAMES.len()].to_string(),
            users,
            edges,
            negative_edges: edges / 5,
            negative_percentage: f * 100.0,
            diameter: (users % 11) as u32,
            diameter_exact: users % 2 == 0,
            skills,
            mean_skills_per_user: f * 3.0,
        },
        serving: ServingPlan {
            mode: ["auto", "matrix", "rows"][users % 3].to_string(),
            memory_budget_bytes: (edges > 0).then_some(edges as u64),
            tier: ["matrix", "rows"][edges % 2].to_string(),
            estimated_matrix_bytes: (users * users) as u64,
            estimated_row_bytes: users as u64,
            budget_resident_rows: (skills > 0).then_some(skills as u64),
        },
        replicated_seq: (users % 2 == 0).then_some(edges as u64),
    }
}

fn request((variant, n, queries, q): (usize, usize, Vec<TeamQuery>, TeamQuery)) -> Request {
    let deployment = (n % 3 == 0).then(|| NAMES[n % NAMES.len()].to_string());
    let timing = n % 2 == 0;
    let sign = if n % 2 == 0 {
        signed_graph::Sign::Positive
    } else {
        signed_graph::Sign::Negative
    };
    let body = match variant % 9 {
        0 => RequestBody::Query { query: q, timing },
        1 => RequestBody::Batch { queries, timing },
        2 => RequestBody::Warm {
            kinds: (0..n % 4).map(kind).collect(),
        },
        3 => RequestBody::Stats,
        4 => RequestBody::Metrics,
        5 => RequestBody::Deployments,
        6 => RequestBody::EdgeInsert {
            u: n,
            v: n * 7 + 1,
            sign,
        },
        7 => RequestBody::EdgeRemove { u: n, v: n + 1 },
        _ => RequestBody::EdgeSetSign {
            u: n * 3,
            v: n + 2,
            sign,
        },
    };
    // Exercise both the absent (pre-deadline) and present envelope shapes.
    let deadline_ms = (n % 5 == 0).then_some(n as u64 * 17);
    Request {
        deployment,
        deadline_ms,
        body,
    }
}

#[allow(clippy::type_complexity)]
fn response(
    (variant, n, answers, extra): (
        usize,
        usize,
        Vec<TeamAnswer>,
        (DeploymentStats, MetricsSnapshot, ServiceError),
    ),
) -> Response {
    let (stats, snapshot, error) = extra;
    match variant % 7 {
        0 => Response::Answer(
            answers
                .into_iter()
                .next()
                .unwrap_or_else(|| answer((Vec::new(), n, (0, 0, 0), (0, 0, false)))),
        ),
        1 => Response::Batch(answers),
        2 => Response::Warmed {
            deployment: NAMES[n % NAMES.len()].to_string(),
            kinds: (0..n % 5).map(kind).collect(),
            micros: n as u64 * 37,
        },
        3 => Response::Stats(stats),
        4 => Response::Metrics {
            deployments: (0..n % 3)
                .map(|i| DeploymentMetrics {
                    deployment: NAMES[i % NAMES.len()].to_string(),
                    metrics: snapshot.clone(),
                })
                .collect(),
            total: snapshot,
        },
        5 => Response::Deployments(
            (0..n % 4)
                .map(|i| DeploymentInfo {
                    name: NAMES[i % NAMES.len()].to_string(),
                    default: i == 0,
                    loaded: i % 2 == 0,
                    users: (i % 2 == 0).then_some(i as u64 * 100),
                    edges: (i % 2 == 0).then_some(i as u64 * 500),
                    skills: (i % 2 == 0).then_some(i as u64 * 10),
                    tier: (i % 2 == 0).then(|| "matrix".to_string()),
                })
                .collect(),
        ),
        6 => Response::Mutated {
            deployment: NAMES[n % NAMES.len()].to_string(),
            mutation: ["edge_insert", "edge_remove", "edge_set_sign"][n % 3].to_string(),
            changed: n % 2 == 0,
            rows_invalidated: n as u64 * 3,
            downgraded: (0..n % 4).map(kind).collect(),
            edges: n as u64 * 11,
            micros: n as u64 * 5,
        },
        _ => Response::Error(error),
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_envelopes_round_trip(
        req in (
            0usize..9,
            0usize..30,
            prop::collection::vec(query_strategy(), 0..4),
            query_strategy(),
        ).prop_map(request)
    ) {
        let json = serde_json::to_string(&req).unwrap();
        prop_assert!(json.contains("\"version\":1"));
        let back = Request::parse_json(&json).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_envelopes_round_trip(
        resp in (
            0usize..8,
            0usize..30,
            prop::collection::vec(answer_strategy(), 0..4),
            (
                (1usize..4000, 0usize..9000, 0usize..300, 0.0f64..1.0)
                    .prop_map(stats),
                ((0u64..9, 0u64..9, 0u64..9, 0u64..9), (0u64..999, 0u64..999, 0u64..9, 0u64..99))
                    .prop_map(metrics),
                (0usize..7, 0u64..1_000_000, 0usize..40).prop_map(error),
            ),
        ).prop_map(response)
    ) {
        let json = serde_json::to_string(&resp).unwrap();
        let back = Response::parse_json(&json).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn unknown_versions_are_rejected_with_the_typed_error(version in 0u64..1_000_000) {
        let version = if version == u64::from(PROTOCOL_VERSION) { version + 1 } else { version };
        let json = format!("{{\"version\": {version}, \"op\": \"stats\"}}");
        let err = Request::parse_json(&json).unwrap_err();
        prop_assert_eq!(
            err,
            ServiceError::UnsupportedVersion { requested: version, supported: PROTOCOL_VERSION }
        );
        // Responses enforce the version too.
        let json = format!("{{\"version\": {version}, \"op\": \"deployments\", \"deployments\": []}}");
        let err = Response::parse_json(&json).unwrap_err();
        prop_assert!(matches!(err, ServiceError::UnsupportedVersion { .. }));
    }

    #[test]
    fn service_errors_round_trip_alone(e in (0usize..7, 0u64..1_000_000, 0usize..60).prop_map(error)) {
        let json = serde_json::to_string(&e).unwrap();
        prop_assert!(json.contains(e.code()));
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        let back = ServiceError::parse_value(&value).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn queries_embedded_in_envelopes_match_the_jsonl_wire(q in query_strategy()) {
        // The envelope embeds the exact JSONL object, so batch bodies can be
        // spliced between transports without re-encoding.
        let envelope = Request::new(RequestBody::Query { query: q.clone(), timing: true });
        let json = serde_json::to_string(&envelope).unwrap();
        let direct = serde_json::to_string(&q).unwrap();
        prop_assert!(json.contains(&direct[1..direct.len() - 1]));
    }
}

#[test]
fn answer_status_labels_are_closed_under_parse() {
    for s in AnswerStatus::ALL {
        assert_eq!(AnswerStatus::parse(s.label()), Some(s));
    }
    assert_eq!(AnswerStatus::parse("bogus"), None);
    assert_eq!(AnswerStatus::ALL.len(), 4);
}
