//! End-to-end tests for the objective-pluggable solver layer behind the
//! `version: 1` protocol.
//!
//! Asserted here:
//! * every objective variant is servable over HTTP: the answer echoes the
//!   objective label and (for scoring objectives) carries a score;
//! * an absent `objective` field stays **byte-identical** to the
//!   pre-objective protocol, across the HTTP and CLI transports and
//!   across live graph mutations;
//! * a malformed or unknown objective spec is a typed `bad_request`
//!   envelope echoing the offending spec, on the single-query, batch and
//!   envelope paths alike;
//! * the Prometheus scrape exposes the label-closed per-objective counter
//!   family.

use std::sync::Arc;

use tfsn_core::compat::CompatibilityKind;
use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource};
use tfsn_engine::server::{HttpServer, ServerOptions};
use tfsn_engine::service::{Service, ServiceOptions};
use tfsn_engine::{AnswerStatus, BatchOptions, HttpClient, Objective, TeamAnswer, TeamQuery};

fn service() -> Arc<Service> {
    let registry = DeploymentRegistry::new(vec![
        DeploymentConfig::new("sd", DeploymentSource::Slashdot),
        DeploymentConfig::new(
            "tiny",
            DeploymentSource::parse("synthetic:nodes=100,edges=360,skills=14,seed=9").unwrap(),
        ),
    ])
    .unwrap();
    Arc::new(Service::with_options(
        registry,
        ServiceOptions {
            batch: BatchOptions::with_threads(2),
            chunk: 8,
            objective: None,
        },
    ))
}

fn bind(service: Arc<Service>) -> HttpServer {
    HttpServer::bind(
        service,
        "127.0.0.1:0",
        ServerOptions {
            keep_alive: std::time::Duration::from_secs(5),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
}

fn post(client: &mut HttpClient, target: &str, body: &str) -> (u16, String) {
    let reply = client.post(target, body).expect("request on test socket");
    (reply.status, reply.body)
}

#[test]
fn every_objective_serves_end_to_end_over_http() {
    let server = bind(service());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // String-label form: synergy. The answer must echo the objective and
    // carry a score (total pairwise synergy, scaled).
    let (status, body) = post(
        &mut client,
        "/v1/query?deployment=tiny&timing=0",
        r#"{"id": 1, "task": [0, 1], "objective": "synergy"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let answer: TeamAnswer = serde_json::from_str(body.trim()).unwrap();
    assert_eq!(answer.objective.as_deref(), Some("synergy"));
    if answer.status == AnswerStatus::Ok {
        assert!(
            answer.score.is_some(),
            "scoring objective must score: {body}"
        );
    }

    // Object form: constrained with designated member + size budget. The
    // solved team must contain the designated node and respect the budget.
    let (status, body) = post(
        &mut client,
        "/v1/query?deployment=tiny&timing=0",
        r#"{"id": 2, "task": [0, 1], "objective": {"kind": "constrained", "include": [0], "max_size": 5}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let answer: TeamAnswer = serde_json::from_str(body.trim()).unwrap();
    assert_eq!(answer.objective.as_deref(), Some("constrained"));
    if answer.status == AnswerStatus::Ok {
        assert!(
            answer.members.contains(&0),
            "include must be honoured: {body}"
        );
        assert!(
            answer.members.len() <= 5,
            "max_size must be honoured: {body}"
        );
    }

    // Explicit min_team round-trips as the labelled default.
    let (status, body) = post(
        &mut client,
        "/v1/query?deployment=tiny&timing=0",
        r#"{"id": 3, "task": [0, 1], "objective": "min_team"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let answer: TeamAnswer = serde_json::from_str(body.trim()).unwrap();
    assert_eq!(answer.objective.as_deref(), Some("min_team"));

    // A mixed batch over the streaming path: one answer per line, each
    // echoing its own query's objective (or none).
    let stream = "{\"id\": 0, \"task\": [0]}\n\
                  {\"id\": 1, \"task\": [0], \"objective\": \"synergy\"}\n\
                  {\"id\": 2, \"task\": [0], \"objective\": {\"kind\": \"constrained\", \"max_size\": 4}}\n";
    let (status, body) = post(
        &mut client,
        "/v1/batch?deployment=tiny&timing=false",
        stream,
    );
    assert_eq!(status, 200, "{body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "{body}");
    assert!(
        !lines[0].contains("\"objective\""),
        "objective-less answers stay on the legacy shape: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"objective\":\"synergy\""),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"objective\":\"constrained\""),
        "{}",
        lines[2]
    );

    // The scrape exposes the label-closed per-objective counter family.
    let text = client.metrics_text().expect("GET /metrics");
    for label in Objective::ALL_LABELS {
        assert!(
            text.contains(&format!(
                "tfsn_objective_queries_total{{deployment=\"tiny\",objective=\"{label}\"}}"
            )),
            "missing objective {label} in scrape:\n{text}"
        );
    }
    assert!(
        text.contains("objective=\"synergy\"} 2"),
        "two synergy queries were served:\n{text}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn absent_objective_is_byte_identical_across_transports_and_mutations() {
    let service = service();
    let server = bind(service.clone());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let queries: Vec<TeamQuery> = (0..12)
        .map(|i| {
            TeamQuery::new([i % 5, (i * 3 + 1) % 5])
                .with_id(i as u64)
                .with_kind(if i % 2 == 0 {
                    CompatibilityKind::Spa
                } else {
                    CompatibilityKind::Nne
                })
        })
        .collect();
    let stream: String = queries
        .iter()
        .map(|q| serde_json::to_string(q).unwrap() + "\n")
        .collect();
    assert!(
        !stream.contains("objective"),
        "objective-less queries serialize without the field: {stream}"
    );

    let serve = |client: &mut HttpClient| {
        let (status, body) = post(client, "/v1/batch?deployment=tiny&timing=false", &stream);
        assert_eq!(status, 200, "{body}");
        body
    };
    // One warm-up pass so every later answer is a cache hit and the JSONL
    // is byte-stable across transports.
    serve(&mut client);
    let http_before = serve(&mut client);
    assert!(
        !http_before.contains("\"objective\"") && !http_before.contains("\"score\""),
        "legacy answers must not grow fields: {http_before}"
    );

    // The CLI transport (stream_batch is what `tfsn serve-batch` drives)
    // must produce the same bytes.
    let mut cli_bytes = Vec::new();
    service
        .stream_batch(
            Some("tiny"),
            std::io::Cursor::new(stream.as_bytes()),
            &mut cli_bytes,
            tfsn_engine::StreamOptions::timing(false),
        )
        .unwrap();
    assert_eq!(
        http_before,
        String::from_utf8(cli_bytes).unwrap(),
        "HTTP and CLI transports must emit identical JSONL"
    );

    // And the engine directly, with the default objective routed through
    // the objective dispatch, agrees answer for answer.
    let engine = service.engine(Some("tiny")).unwrap();
    let mut direct = engine.batch(&queries, &BatchOptions::with_threads(2));
    direct.iter_mut().for_each(|a| a.strip_timing());
    let direct_body: String = direct
        .iter()
        .map(|a| serde_json::to_string(a).unwrap() + "\n")
        .collect();
    assert_eq!(http_before, direct_body);

    // Interleave a live mutation, then re-serve: both transports still
    // agree byte for byte on the mutated graph.
    let (status, body) = post(
        &mut client,
        "/v1/mutate?deployment=tiny",
        r#"{"op": "edge_remove", "u": 0, "v": 1}"#,
    );
    // The seeded graph may not have edge (0, 1); insert instead then.
    if status != 200 {
        assert!(body.contains("no edge"), "{body}");
        let (status, body) = post(
            &mut client,
            "/v1/mutate?deployment=tiny",
            r#"{"op": "edge_insert", "u": 0, "v": 1, "sign": "-"}"#,
        );
        assert_eq!(status, 200, "{body}");
    }
    serve(&mut client); // re-warm the rows the mutation invalidated
    let http_after = serve(&mut client);
    let mut cli_after = Vec::new();
    service
        .stream_batch(
            Some("tiny"),
            std::io::Cursor::new(stream.as_bytes()),
            &mut cli_after,
            tfsn_engine::StreamOptions::timing(false),
        )
        .unwrap();
    assert_eq!(
        http_after,
        String::from_utf8(cli_after).unwrap(),
        "transports must stay identical across mutations"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn malformed_objectives_are_typed_bad_requests_echoing_the_spec() {
    let server = bind(service());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Unknown label on the single-query path.
    let (status, body) = post(
        &mut client,
        "/v1/query?deployment=tiny",
        r#"{"task": [0], "objective": "turbo"}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    assert!(body.contains("unknown objective `turbo`"), "{body}");

    // Constraint fields on a parameterless objective are rejected loudly,
    // not silently ignored.
    let (status, body) = post(
        &mut client,
        "/v1/query?deployment=tiny",
        r#"{"task": [0], "objective": {"kind": "synergy", "max_size": 3}}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("accepts no field `max_size`"), "{body}");

    // On the batch path the error carries the offending line number.
    let (status, body) = post(
        &mut client,
        "/v1/batch?deployment=tiny",
        "{\"task\": [0]}\n{\"task\": [0], \"objective\": \"speed\"}\n",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("line 2:"), "{body}");
    assert!(body.contains("unknown objective `speed`"), "{body}");

    // And the envelope transport maps it to the same typed error.
    let (status, body) = post(
        &mut client,
        "/v1/rpc",
        r#"{"version": 1, "op": "query", "deployment": "tiny", "query": {"task": [0], "objective": 7}}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");
    assert!(body.contains("objective"), "{body}");

    drop(client);
    server.shutdown();
}
