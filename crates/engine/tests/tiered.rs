//! Integration tests for the tiered relation store: exact hit/miss
//! accounting under concurrent cold batches (the misattribution regression),
//! row-mode vs matrix-mode answer equivalence, and serving a graph whose
//! full `O(|V|²)` matrix would blow the memory budget.

use tfsn_core::compat::{estimated_matrix_bytes, CompatibilityKind};
use tfsn_core::team::greedy::GreedyConfig;
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::Solver;
use tfsn_datasets::{synthetic, DatasetSpec};
use tfsn_engine::{
    AnswerStatus, BatchOptions, Deployment, Engine, EngineOptions, StorePolicy, TeamAnswer,
    TeamQuery, TierChoice,
};
use tfsn_skills::SkillId;

fn engine_with(policy: StorePolicy) -> Engine {
    Engine::with_options(
        Deployment::from_dataset(tfsn_datasets::slashdot()),
        EngineOptions {
            policy,
            ..Default::default()
        },
    )
}

fn normalized(mut answers: Vec<TeamAnswer>) -> Vec<TeamAnswer> {
    for a in &mut answers {
        a.micros = 0;
        a.build_micros = 0;
        a.cache_hit = false;
    }
    answers
}

/// Regression test for the cache-hit misattribution bug: `Engine::query`
/// used to read `is_cached` *before* the build, so N parallel queries
/// racing on one cold kind all recorded misses even though exactly one
/// build ran, and `cache_misses` could exceed the build count. Now a miss
/// is recorded iff the query performed the build itself.
#[test]
fn concurrent_cold_batch_records_misses_equal_to_build_events() {
    let engine = engine_with(StorePolicy::materialized());
    let queries: Vec<TeamQuery> = (0..64)
        .map(|i| {
            TeamQuery::new([i % 5])
                .with_id(i as u64)
                .with_kind(CompatibilityKind::Spa)
        })
        .collect();
    let answers = engine.batch(&queries, &BatchOptions::with_threads(8));
    let m = engine.metrics();
    assert_eq!(m.queries_served, 64);
    assert_eq!(engine.store().build_count(), 1);
    assert_eq!(
        m.cache_misses, 1,
        "exactly the build event is a miss; blocked waiters are hits"
    );
    assert_eq!(m.cache_hits, 63);
    assert_eq!(m.matrix_builds, 1);
    assert_eq!(
        answers.iter().filter(|a| !a.cache_hit).count(),
        1,
        "exactly one answer carries the miss"
    );
}

/// The same invariant in row mode: misses equal the number of queries that
/// computed at least one row themselves, and hits + misses cover the batch.
#[test]
fn row_mode_cold_batch_accounting_is_consistent() {
    let engine = engine_with(StorePolicy::rows(None));
    let queries: Vec<TeamQuery> = (0..32)
        .map(|i| {
            TeamQuery::new([i % 5, (i * 3 + 1) % 5])
                .with_id(i as u64)
                .with_kind(CompatibilityKind::Spo)
        })
        .collect();
    engine.batch(&queries, &BatchOptions::with_threads(8));
    let m = engine.metrics();
    assert_eq!(m.matrix_builds, 0, "row mode must not materialise");
    assert!(m.row_builds > 0);
    assert_eq!(m.cache_hits + m.cache_misses, 32);
    assert!(
        m.cache_misses <= m.row_builds,
        "a miss implies at least one row build: {m:?}"
    );
    // A second identical batch is fully warm (no eviction pressure).
    engine.batch(&queries, &BatchOptions::with_threads(8));
    let m2 = engine.metrics();
    assert_eq!(m2.row_builds, m.row_builds, "warm batch builds nothing");
    assert_eq!(m2.cache_hits, m.cache_hits + 32);
}

/// Row mode (even under heavy eviction pressure) must answer exactly like
/// the materialised matrix on a graph small enough to run both.
#[test]
fn row_mode_answers_match_matrix_mode_under_eviction_pressure() {
    let kinds = [
        CompatibilityKind::Spa,
        CompatibilityKind::Spo,
        CompatibilityKind::Nne,
        CompatibilityKind::Sbph, // asymmetric: exercises the symmetric closure
    ];
    let queries: Vec<TeamQuery> = (0..40)
        .map(|i| {
            TeamQuery::new([i % 9, (i * 3 + 1) % 9, (i * 7 + 2) % 9])
                .with_id(i as u64)
                .with_kind(kinds[i % kinds.len()])
                .with_solver(Solver::greedy(TeamAlgorithm::LCMD))
        })
        .collect();
    let matrix_engine = engine_with(StorePolicy::materialized());
    let matrix_answers = normalized(matrix_engine.batch(&queries, &BatchOptions::default()));

    // ~3 KiB budget: a few rows resident at a time, constant eviction.
    let rows_engine = engine_with(StorePolicy::rows(Some(3 << 10)));
    let rows_answers = normalized(rows_engine.batch(&queries, &BatchOptions::default()));
    assert_eq!(matrix_answers, rows_answers);
    let m = rows_engine.metrics();
    assert!(
        m.row_evictions > 0,
        "the tiny budget must have caused evictions: {m:?}"
    );
    let budget_total = 4 * (3 << 10); // one 3 KiB cap per touched kind
    assert!(m.resident_bytes <= budget_total as u64);
}

/// Acceptance scenario: a 50k-node synthetic graph whose full matrix
/// (~5 GiB even bit-packed) can never be materialised under the budget is
/// served in row mode under a 1 MiB per-kind budget, with evictions
/// observed in the metrics.
#[test]
fn serves_50k_nodes_under_memory_budget_with_evictions() {
    let users = 50_000;
    let spec = DatasetSpec {
        name: format!("synthetic-{users}n"),
        users,
        edges: users * 5,
        negative_fraction: 0.2,
        diameter: 0,
        skills: 2_000,
        skills_per_user: 3.0,
        zipf_exponent: 1.0,
        locality: 0.8,
        preferential: 0.3,
        balance_bias: 0.8,
        camps: 4,
        seed: 1718,
    };
    let dataset = synthetic::generate(&spec, 1.0);
    assert_eq!(dataset.graph.node_count(), users);

    // 1 MiB: fits ~9 bit-packed rows of 50k nodes (the unpacked layout fit
    // 2), still nowhere near 50k of them.
    let budget = 1 << 20;
    assert!(estimated_matrix_bytes(users) > budget * 1_000);

    // Tasks over rare skills keep the candidate pools (and test runtime)
    // small while still touching well over the budget's worth of rows.
    let rare: Vec<usize> = (0..dataset.skills.skill_count())
        .filter(|&s| {
            let holders = dataset.skills.users_with_skill(SkillId::new(s)).len();
            (1..=6).contains(&holders)
        })
        .take(8)
        .collect();
    assert!(rare.len() >= 4, "generator produced too few rare skills");
    let solver = Solver::Greedy {
        algorithm: TeamAlgorithm::LCMD,
        config: GreedyConfig {
            max_seeds: Some(3),
            skill_degree_cap: Some(12),
            random_seed: 7,
        },
    };
    let queries: Vec<TeamQuery> = rare
        .chunks(2)
        .enumerate()
        .map(|(i, skills)| TeamQuery {
            id: Some(i as u64),
            task: skills.to_vec(),
            kind: CompatibilityKind::Spo,
            solver: solver.clone(),
            objective: None,
        })
        .collect();

    let engine = Engine::with_options(
        Deployment::from_dataset(dataset),
        EngineOptions {
            policy: StorePolicy::auto(budget),
            ..Default::default()
        },
    );
    assert_eq!(
        engine.store().tier_for(CompatibilityKind::Spo),
        TierChoice::Rows
    );
    let answers = engine.batch(&queries, &BatchOptions::with_threads(2));
    assert_eq!(answers.len(), queries.len());
    assert!(
        answers
            .iter()
            .any(|a| matches!(a.status, AnswerStatus::Ok | AnswerStatus::NoTeam)),
        "degenerate workload: {answers:?}"
    );

    let m = engine.metrics();
    assert_eq!(m.matrix_builds, 0, "the matrix tier must never engage");
    assert!(m.row_builds >= 3, "expected several on-demand rows: {m:?}");
    assert!(
        m.row_evictions > 0,
        "a ~9-row budget must evict under this workload: {m:?}"
    );
    assert!(
        m.resident_bytes <= budget as u64,
        "budget invariant violated: {m:?}"
    );
    let capacity = budget / tfsn_core::compat::estimated_row_bytes(users);
    assert!(
        capacity >= 8,
        "bit-packing must fit >=4x the unpacked layout's 2 rows per MiB, got {capacity}"
    );
    assert!(
        m.resident_rows as usize <= capacity,
        "resident rows exceed the budget's capacity: {m:?}"
    );
}
