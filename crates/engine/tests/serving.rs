//! Integration tests for the serving engine: exactly-once matrix builds
//! under concurrency, and order-stable deterministic batch answers
//! regardless of the worker-thread count.

use tfsn_core::compat::CompatibilityKind;
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::Solver;
use tfsn_engine::{AnswerStatus, BatchOptions, Deployment, Engine, TeamAnswer, TeamQuery};

fn engine() -> Engine {
    Engine::new(Deployment::from_dataset(tfsn_datasets::slashdot()))
}

/// A mixed-kind, mixed-algorithm batch; deterministic per `n`.
fn mixed_batch(n: usize) -> Vec<TeamQuery> {
    let kinds = CompatibilityKind::EVALUATED;
    let algorithms = [
        TeamAlgorithm::LCMD,
        TeamAlgorithm::LCMC,
        TeamAlgorithm::RANDOM,
    ];
    (0..n)
        .map(|i| {
            TeamQuery::new([i % 9, (i * 3 + 1) % 9, (i * 7 + 2) % 9])
                .with_id(i as u64)
                .with_kind(kinds[i % kinds.len()])
                .with_solver(Solver::greedy(algorithms[i % algorithms.len()]))
        })
        .collect()
}

/// Strips the non-deterministic observability fields (timing, cache state at
/// query start) so answers can be compared across runs and thread counts.
fn normalized(mut answers: Vec<TeamAnswer>) -> Vec<TeamAnswer> {
    for a in &mut answers {
        a.micros = 0;
        a.build_micros = 0;
        a.cache_hit = false;
    }
    answers
}

#[test]
fn concurrent_identical_queries_build_each_matrix_exactly_once() {
    let engine = engine();
    // 64 concurrent queries, all SPA: one build.
    let queries: Vec<TeamQuery> = (0..64)
        .map(|i| {
            TeamQuery::new([i % 5])
                .with_id(i as u64)
                .with_kind(CompatibilityKind::Spa)
        })
        .collect();
    let answers = engine.batch(&queries, &BatchOptions::with_threads(8));
    assert_eq!(answers.len(), 64);
    assert_eq!(
        engine.store().build_count(),
        1,
        "64 concurrent SPA queries must share one matrix build"
    );

    // A second wave over three kinds: exactly two more builds (SPA cached).
    let queries: Vec<TeamQuery> = (0..48)
        .map(|i| {
            let kind = [
                CompatibilityKind::Spa,
                CompatibilityKind::Spo,
                CompatibilityKind::Nne,
            ][i % 3];
            TeamQuery::new([i % 5]).with_id(i as u64).with_kind(kind)
        })
        .collect();
    engine.batch(&queries, &BatchOptions::with_threads(8));
    assert_eq!(engine.store().build_count(), 3);
    assert_eq!(engine.store().cached_kinds().len(), 3);
}

#[test]
fn batch_answers_are_deterministic_and_order_stable_across_thread_counts() {
    let queries = mixed_batch(60);
    let mut reference: Option<Vec<TeamAnswer>> = None;
    for threads in [1usize, 2, 4, 8] {
        // A fresh engine per thread count: cold cache each time.
        let engine = engine();
        let answers = engine.batch(&queries, &BatchOptions::with_threads(threads));
        // Order stability: answer i corresponds to query i.
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(q.id, a.id, "answers must come back in query order");
            assert_eq!(q.kind, a.kind);
        }
        let normalized = normalized(answers);
        match &reference {
            None => reference = Some(normalized),
            Some(expected) => assert_eq!(
                expected, &normalized,
                "batch answers differ at {threads} threads"
            ),
        }
    }
}

#[test]
fn repeated_batches_on_one_engine_are_stable_and_all_warm() {
    let engine = engine();
    let queries = mixed_batch(30);
    let first = normalized(engine.batch(&queries, &BatchOptions::default()));
    let second_raw = engine.batch(&queries, &BatchOptions::default());
    assert!(
        second_raw.iter().all(|a| a.cache_hit),
        "second batch must be fully warm"
    );
    assert_eq!(first, normalized(second_raw));
    // Matrix builds: one per distinct kind in the workload, despite 60 queries.
    let distinct_kinds = {
        let mut kinds: Vec<_> = queries.iter().map(|q| q.kind).collect();
        kinds.sort();
        kinds.dedup();
        kinds.len()
    };
    assert_eq!(engine.store().build_count(), distinct_kinds);
}

#[test]
fn batch_mirrors_sequential_single_queries() {
    let queries = mixed_batch(24);
    let parallel_engine = engine();
    let parallel = normalized(parallel_engine.batch(&queries, &BatchOptions::with_threads(4)));
    let sequential_engine = engine();
    let sequential: Vec<TeamAnswer> = queries.iter().map(|q| sequential_engine.query(q)).collect();
    assert_eq!(parallel, normalized(sequential));
    // Sanity: the workload is not degenerate — something solves.
    assert!(parallel.iter().any(|a| a.status == AnswerStatus::Ok));
}
