//! Crash-recovery and durability integration suite for the write-ahead
//! mutation log (`docs/DURABILITY.md` pins the contract):
//!
//! * killing the process at an **arbitrary byte offset** of the log —
//!   including mid-record torn writes — and reloading must reproduce
//!   exactly the acknowledged prefix: the final unacknowledged record is
//!   replayed whole or truncated cleanly, never half-applied;
//! * **concurrent** mutators appending through one engine must leave a log
//!   whose order equals apply order — replaying it into a fresh engine
//!   reproduces the live graph byte-for-byte;
//! * an injected append/fsync failure (the `wal.append` / `wal.fsync`
//!   failpoints) must fail the mutation *without applying it*, poison the
//!   log, and recover on reload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use signed_graph::{EdgeMutation, NodeId, Sign};
use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource, WalConfig};
use tfsn_engine::wal::{self, FsyncPolicy, Wal};
use tfsn_engine::{Engine, MutateError};

/// Node count of the synthetic fixture (mutations target `0..NODES + 2`,
/// so some are out-of-bounds rejections — logged, by design, and replayed
/// as the same deterministic no-ops).
const NODES: usize = 40;

const SPEC: &str = "synthetic:nodes=40,edges=100,skills=8,seed=7";

fn config() -> DeploymentConfig {
    DeploymentConfig::new("fix", DeploymentSource::parse(SPEC).unwrap())
}

fn fresh_engine() -> Engine {
    Engine::new(DeploymentSource::parse(SPEC).unwrap().load())
}

/// A unique scratch directory per call: proptest cases and parallel tests
/// must never share a log file.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tfsn-wal-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The graph state, rendered for byte-comparison: the canonical sorted
/// edge list (endpoints + signs) is the entire mutable state.
fn graph_bytes(engine: &Engine) -> String {
    format!("{:?}", engine.graph().edges())
}

fn mutation((sel, u, v): (usize, usize, usize)) -> EdgeMutation {
    let sign = if (u + v) % 2 == 0 {
        Sign::Positive
    } else {
        Sign::Negative
    };
    let (u, v) = (NodeId::new(u), NodeId::new(v));
    match sel % 3 {
        0 => EdgeMutation::Insert { u, v, sign },
        1 => EdgeMutation::Remove { u, v },
        _ => EdgeMutation::SetSign { u, v, sign },
    }
}

fn mutation_strategy() -> impl Strategy<Value = EdgeMutation> {
    (0usize..3, 0usize..NODES + 2, 0usize..NODES).prop_map(mutation)
}

/// Proptest case count, overridable for the nightly deep run.
fn cases() -> u32 {
    std::env::var("TFSN_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The acceptance property: submit an arbitrary mutation sequence with
    /// a WAL attached, "crash" by cutting the log at an arbitrary byte
    /// offset, reload. The recovered graph must equal a fresh engine
    /// replaying exactly the records that survived the cut — which must
    /// themselves be a record-aligned prefix of the submitted sequence.
    #[test]
    fn crash_at_an_arbitrary_offset_recovers_the_acknowledged_prefix(
        mutations in prop::collection::vec(mutation_strategy(), 1..12),
        cut_seed in 0usize..100_000,
    ) {
        let dir = scratch("crash");
        let wal_config = || WalConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let registry = DeploymentRegistry::single(config()).with_wal(wal_config());
        let engine = registry.engine(None).unwrap();
        for m in &mutations {
            let _ = engine.mutate(m); // rejections append too (by design)
        }
        drop(engine);
        drop(registry);

        // The crash: the file survives only up to an arbitrary offset.
        let path = wal_config().file("fix");
        let full = std::fs::read(&path).unwrap();
        let cut = cut_seed % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        // The surviving records are a prefix of the submitted sequence.
        let scan = wal::scan(&path).unwrap();
        let whole = scan.mutations.len();
        prop_assert!(whole <= mutations.len());
        prop_assert_eq!(&scan.mutations, &mutations[..whole]);

        // Recovery must reproduce exactly that prefix — never a
        // half-applied record from the torn tail.
        let recovered = DeploymentRegistry::single(config()).with_wal(wal_config());
        let engine = recovered.engine(None).unwrap();
        let reference = fresh_engine();
        for m in &mutations[..whole] {
            let _ = reference.mutate(m);
        }
        prop_assert_eq!(graph_bytes(&engine), graph_bytes(&reference));

        // The reopened log truncated the tail: it is clean and appendable.
        let rescan = wal::scan(&path).unwrap();
        prop_assert!(rescan.clean());
        prop_assert_eq!(rescan.mutations.len(), whole);
        drop(engine);
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite (c): mutations racing through one engine from several
    /// threads. The engine's write-order lock makes append order equal
    /// apply order, so replaying the log into a fresh engine must
    /// reproduce the live graph byte-for-byte — for *some* interleaving is
    /// not enough, it must be the logged one (edge inserts/removes do not
    /// commute).
    #[test]
    fn concurrent_mutations_log_in_apply_order(
        lists in prop::collection::vec(
            prop::collection::vec(mutation_strategy(), 1..8),
            2..5,
        ),
    ) {
        let dir = scratch("race");
        let path = dir.join("race.wal");
        let engine = fresh_engine();
        let (wal, _) = Wal::open(&path, FsyncPolicy::Off).unwrap();
        engine.attach_wal(wal).unwrap();
        let engine_ref = &engine;
        std::thread::scope(|s| {
            for list in &lists {
                s.spawn(move || {
                    for m in list {
                        let _ = engine_ref.mutate(m);
                    }
                });
            }
        });
        engine.wal().unwrap().sync().unwrap();

        let scan = wal::scan(&path).unwrap();
        prop_assert!(scan.clean());
        let submitted: usize = lists.iter().map(Vec::len).sum();
        prop_assert_eq!(scan.mutations.len(), submitted);
        prop_assert_eq!(engine.wal().unwrap().appends(), submitted as u64);

        let replayed = fresh_engine();
        for m in &scan.mutations {
            let _ = replayed.mutate(m);
        }
        prop_assert_eq!(graph_bytes(&engine), graph_bytes(&replayed));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The batched-group crash property: a `mutate_batch` chunk is ONE
    /// framed record, so killing the process at **every byte offset** of
    /// that record must recover all of the group or none of it — never a
    /// prefix of its mutations. (Single-record kills are covered by
    /// `crash_at_an_arbitrary_offset_recovers_the_acknowledged_prefix`;
    /// this pins the new group framing.)
    #[test]
    fn batched_group_kill_at_every_offset_is_all_or_none(
        prefix in prop::collection::vec(mutation_strategy(), 0..4),
        group in prop::collection::vec(mutation_strategy(), 2..10),
    ) {
        let dir = scratch("group");
        let wal_config = || WalConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let registry = DeploymentRegistry::single(config()).with_wal(wal_config());
        let engine = registry.engine(None).unwrap();
        for m in &prefix {
            let _ = engine.mutate(m); // rejections append too (by design)
        }
        let path = wal_config().file("fix");
        let group_start = std::fs::metadata(&path).unwrap().len() as usize;
        engine.mutate_batch(&group).unwrap();
        drop(engine);
        drop(registry);
        let full = std::fs::read(&path).unwrap();
        prop_assert!(full.len() > group_start, "the group must have been logged");

        // Scan layer: every cut inside the group record tears the WHOLE
        // group — the surviving mutations are exactly the singles prefix.
        for cut in group_start..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = wal::scan(&path).unwrap();
            prop_assert_eq!(
                scan.mutations.len(),
                prefix.len(),
                "cut at byte {} (group starts at {}) must drop the whole group",
                cut,
                group_start
            );
            prop_assert_eq!(&scan.mutations, &prefix);
        }
        // The intact file flattens the group back into per-mutation seqs.
        std::fs::write(&path, &full).unwrap();
        let scan = wal::scan(&path).unwrap();
        prop_assert_eq!(scan.mutations.len(), prefix.len() + group.len());

        // Registry-level recovery at representative kill points: the
        // recovered graph equals a fresh replay of whatever whole records
        // survived — and the survivor count is all-or-none for the group.
        let submitted: Vec<EdgeMutation> =
            prefix.iter().chain(group.iter()).cloned().collect();
        let mid = group_start + (full.len() - group_start) / 2;
        for cut in [group_start, mid, full.len() - 1, full.len()] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let whole = wal::scan(&path).unwrap().mutations.len();
            prop_assert!(
                whole == prefix.len() || whole == submitted.len(),
                "kill at byte {} recovered {} mutation(s): a partial group",
                cut,
                whole
            );
            let recovered = DeploymentRegistry::single(config()).with_wal(wal_config());
            let engine = recovered.engine(None).unwrap();
            let reference = fresh_engine();
            for m in &submitted[..whole] {
                let _ = reference.mutate(m);
            }
            prop_assert_eq!(graph_bytes(&engine), graph_bytes(&reference));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Registry-level sweep of *every* kill point for a short sequence: the
/// unit suite cuts at every offset at the scan layer; this pins the same
/// exhaustiveness through load → recover → attach.
#[test]
fn every_kill_offset_recovers_cleanly_through_the_registry() {
    let dir = scratch("sweep");
    let wal_config = || WalConfig::new(&dir).with_fsync(FsyncPolicy::Always);
    let registry = DeploymentRegistry::single(config()).with_wal(wal_config());
    let engine = registry.engine(None).unwrap();
    let edges: Vec<_> = engine.graph().edges()[..2].to_vec();
    let mutations = vec![
        EdgeMutation::Remove {
            u: edges[0].u,
            v: edges[0].v,
        },
        EdgeMutation::SetSign {
            u: edges[1].u,
            v: edges[1].v,
            sign: edges[1].sign.flip(),
        },
        EdgeMutation::Insert {
            u: edges[0].u,
            v: edges[0].v,
            sign: edges[0].sign.flip(),
        },
    ];
    for m in &mutations {
        engine.mutate(m).unwrap();
    }
    drop(engine);
    drop(registry);
    let path = wal_config().file("fix");
    let full = std::fs::read(&path).unwrap();

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let whole = wal::scan(&path).unwrap().mutations.len();
        let recovered = DeploymentRegistry::single(config()).with_wal(wal_config());
        let engine = recovered.engine(None).unwrap();
        let reference = fresh_engine();
        for m in &mutations[..whole] {
            reference.mutate(m).unwrap();
        }
        assert_eq!(
            graph_bytes(&engine),
            graph_bytes(&reference),
            "kill at byte {cut} (of {}) must recover {whole} record(s)",
            full.len()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Failpoint tests share the process-global registry; serialize them.
#[cfg(debug_assertions)]
static FAILPOINTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// An injected torn write mid-append: the mutation fails *without
/// applying*, the log poisons, and a reload truncates the torn bytes and
/// resumes from the acknowledged state.
#[cfg(debug_assertions)]
#[test]
fn injected_torn_write_fails_the_mutation_and_recovers_on_reload() {
    let _guard = FAILPOINTS.lock().unwrap();
    tfsn_engine::failpoint::reset();
    let dir = scratch("torn");
    let wal_config = || WalConfig::new(&dir).with_fsync(FsyncPolicy::Always);
    let registry = DeploymentRegistry::single(config()).with_wal(wal_config());
    let engine = registry.engine(None).unwrap();

    let first = engine.graph().edges()[0];
    engine
        .mutate(&EdgeMutation::Remove {
            u: first.u,
            v: first.v,
        })
        .unwrap();
    let acknowledged = graph_bytes(&engine);

    let second = engine.graph().edges()[0];
    let torn = EdgeMutation::Remove {
        u: second.u,
        v: second.v,
    };
    tfsn_engine::failpoint::arm(
        "wal.append",
        tfsn_engine::failpoint::Action::ShortWrite(3),
        1,
    );
    match engine.mutate(&torn) {
        Err(MutateError::Wal(e)) => assert!(tfsn_engine::failpoint::is_injected(&e), "{e}"),
        other => panic!("torn append must fail the mutation, got {other:?}"),
    }
    assert_eq!(
        graph_bytes(&engine),
        acknowledged,
        "a failed append must not apply"
    );

    // Poisoned: the next (healthy) mutation is refused too.
    match engine.mutate(&torn) {
        Err(MutateError::Wal(e)) => assert!(e.to_string().contains("poisoned"), "{e}"),
        other => panic!("poisoned log must refuse appends, got {other:?}"),
    }
    drop(engine);
    drop(registry);

    // Reload: the 3 torn bytes truncate away; state = acknowledged; the
    // log accepts appends again.
    let recovered = DeploymentRegistry::single(config()).with_wal(wal_config());
    let engine = recovered.engine(None).unwrap();
    assert_eq!(graph_bytes(&engine), acknowledged);
    engine.mutate(&torn).unwrap();
    assert!(wal::scan(&wal_config().file("fix")).unwrap().clean());
    drop(engine);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
    tfsn_engine::failpoint::reset();
}

/// An injected fsync failure under `always`: the record bytes may be in
/// the file, but the acknowledgement never happens — the mutation fails
/// unapplied and recovery may replay the complete-but-unacknowledged
/// record *whole* (the allowed outcome; half-applied never is).
#[cfg(debug_assertions)]
#[test]
fn injected_fsync_failure_fails_the_mutation_unapplied() {
    let _guard = FAILPOINTS.lock().unwrap();
    tfsn_engine::failpoint::reset();
    let dir = scratch("fsync");
    let path = dir.join("fix.wal");
    let engine = fresh_engine();
    let (wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
    engine.attach_wal(wal).unwrap();
    let before = graph_bytes(&engine);

    let first = engine.graph().edges()[0];
    tfsn_engine::failpoint::arm("wal.fsync", tfsn_engine::failpoint::Action::Error, 1);
    let err = engine
        .mutate(&EdgeMutation::Remove {
            u: first.u,
            v: first.v,
        })
        .unwrap_err();
    assert!(matches!(err, MutateError::Wal(_)), "{err}");
    assert_eq!(graph_bytes(&engine), before, "unacknowledged ⇒ unapplied");
    assert!(engine.wal().unwrap().poisoned());

    // The record hit the file whole before the fsync failed: recovery is
    // allowed to replay it — as a complete record, exactly once.
    let scan = wal::scan(&path).unwrap();
    assert!(scan.clean());
    assert_eq!(scan.mutations.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
    tfsn_engine::failpoint::reset();
}
