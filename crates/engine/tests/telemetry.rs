//! Property and concurrency tests for the telemetry subsystem: histogram
//! merge exactness, percentile error bounds, and lock-free recording under
//! contention.

use proptest::prelude::*;
use tfsn_engine::telemetry::{HistogramSnapshot, LatencyHistogram};

/// Records `values` into a fresh histogram and snapshots it.
fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = LatencyHistogram::default();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

/// The exact sample quantile the histogram approximates: the value at rank
/// `ceil(q * n)` (1-based) of the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two snapshots is indistinguishable from one histogram that
    /// recorded both sample streams — the property that makes
    /// cross-deployment aggregation exact.
    #[test]
    fn merged_snapshots_equal_concatenated_recording(
        a in prop::collection::vec(0u64..3_000_000, 0..300),
        b in prop::collection::vec(0u64..3_000_000, 0..300),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&concat));
    }

    /// Every reported quantile brackets the exact sample quantile from
    /// above, within one bucket's relative width (12.5%, plus one for the
    /// exact 0..8 region).
    #[test]
    fn quantiles_are_within_one_bucket_of_exact(
        values in prop::collection::vec(0u64..10_000_000, 1..500),
        q in 0.0f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = snapshot.quantile(q);
        prop_assert!(approx >= exact, "quantile {q}: {approx} < exact {exact}");
        prop_assert!(
            approx <= exact + exact / 8 + 1,
            "quantile {q}: {approx} exceeds exact {exact} by more than 12.5%"
        );
    }

    /// The histogram never loses mass: count and sum are exact whatever
    /// the sample stream.
    #[test]
    fn count_and_sum_are_exact(values in prop::collection::vec(0u64..1_000_000, 0..400)) {
        let snapshot = snapshot_of(&values);
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        prop_assert_eq!(snapshot.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max, values.iter().copied().max().unwrap_or(0));
    }
}

/// Relaxed-atomic recording from many threads loses no samples: count,
/// sum, and max come out exact.
#[test]
fn concurrent_recording_loses_no_samples() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let histogram = LatencyHistogram::default();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = &histogram;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread values spread across buckets.
                    histogram.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snapshot = histogram.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(snapshot.count(), n);
    assert_eq!(snapshot.sum, n * (n - 1) / 2);
    assert_eq!(snapshot.max, n - 1);
    // The p50 of 0..80000 must land within a bucket of 40000.
    let p50 = snapshot.quantile(0.5);
    assert!((40_000..=45_000).contains(&p50), "p50 {p50}");
}
