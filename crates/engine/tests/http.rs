//! Integration tests for the HTTP/1.1 front-end: an in-process
//! `HttpServer` on an ephemeral port serving **one `Service` with two named
//! deployments**, hammered by concurrent client threads.
//!
//! Asserted here:
//! * `/v1/batch` answers equal `Engine::batch` on the same queries, for
//!   both deployments, under concurrent clients;
//! * the CLI transport (`Service::stream_batch`, which `serve-batch`
//!   drives) and the HTTP transport produce **byte-identical JSONL** for
//!   the same warm query stream;
//! * `/v1/metrics` shows exactly-once matrix-build accounting despite the
//!   concurrency (builds == warmed kinds per deployment);
//! * keep-alive connections serve multiple requests, and error paths map
//!   to the right status codes and typed envelope errors.

use std::sync::Arc;

use tfsn_core::compat::CompatibilityKind;
use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource};
use tfsn_engine::server::{HttpServer, ServerOptions};
use tfsn_engine::service::{Service, ServiceOptions};
use tfsn_engine::{
    BatchOptions, HttpClient, Request, RequestBody, Response, ServiceError, TeamQuery,
};

const KINDS: [CompatibilityKind; 3] = [
    CompatibilityKind::Spa,
    CompatibilityKind::Spo,
    CompatibilityKind::Nne,
];

fn two_deployment_service() -> Arc<Service> {
    let registry = DeploymentRegistry::new(vec![
        DeploymentConfig::new("sd", DeploymentSource::Slashdot),
        DeploymentConfig::new(
            "tiny",
            DeploymentSource::parse("synthetic:nodes=120,edges=420,skills=16,seed=11").unwrap(),
        ),
    ])
    .unwrap();
    Arc::new(Service::with_options(
        registry,
        ServiceOptions {
            batch: BatchOptions::with_threads(2),
            chunk: 8, // force multi-chunk streaming on the 24-query batches
            objective: None,
        },
    ))
}

fn queries(n: usize) -> Vec<TeamQuery> {
    (0..n)
        .map(|i| {
            TeamQuery::new([i % 7, (i * 3 + 1) % 7])
                .with_id(i as u64)
                .with_kind(KINDS[i % KINDS.len()])
        })
        .collect()
}

fn jsonl(queries: &[TeamQuery]) -> String {
    queries
        .iter()
        .map(|q| serde_json::to_string(q).unwrap() + "\n")
        .collect()
}

/// The shared keep-alive client (`tfsn_engine::HttpClient`), with the
/// test-friendly `(status, body)` calling convention.
struct Client(HttpClient);

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        Client(HttpClient::connect(addr).expect("connect to test server"))
    }

    fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let reply = self
            .0
            .request(method, target, body.unwrap_or(""))
            .expect("request on test connection");
        (reply.status, reply.body)
    }
}

#[test]
fn concurrent_clients_get_engine_identical_answers_on_both_transports() {
    let service = two_deployment_service();
    let server = HttpServer::bind(
        service.clone(),
        "127.0.0.1:0",
        ServerOptions {
            threads: 4,
            keep_alive: std::time::Duration::from_secs(5),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Warm three kinds on both deployments through the envelope transport,
    // so every later query is a cache hit and answers are byte-stable.
    let mut warmer = Client::connect(addr);
    for deployment in ["sd", "tiny"] {
        let warm = serde_json::to_string(
            &Request::new(RequestBody::Warm {
                kinds: KINDS.to_vec(),
            })
            .on(deployment),
        )
        .unwrap();
        let (status, body) = warmer.request("POST", "/v1/rpc", Some(&warm));
        assert_eq!(status, 200, "warm failed: {body}");
        match Response::parse_json(&body).unwrap() {
            Response::Warmed {
                deployment: d,
                kinds,
                ..
            } => {
                assert_eq!(d, deployment);
                assert_eq!(kinds.len(), KINDS.len());
            }
            other => panic!("unexpected warm response {other:?}"),
        }
    }
    // Close the warm connection so its worker is free for the storm (an
    // idle keep-alive connection pins one worker until the timeout).
    drop(warmer);

    // 4 client threads × 2 keep-alive requests each, split across the two
    // deployments, all posting the same 24-query JSONL stream.
    let stream = jsonl(&queries(24));
    let bodies: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stream = &stream;
                scope.spawn(move || {
                    let deployment = if t % 2 == 0 { "sd" } else { "tiny" };
                    let mut client = Client::connect(addr);
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        let (status, body) = client.request(
                            "POST",
                            &format!("/v1/batch?deployment={deployment}&timing=false"),
                            Some(stream),
                        );
                        assert_eq!(status, 200, "batch failed: {body}");
                        out.push((deployment.to_string(), body));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(bodies.len(), 8);

    // Exactly-once accounting *before* any direct engine use: per
    // deployment, 4 HTTP batches × 24 queries were served, all warm, and
    // matrix builds equal the 3 warmed kinds — no rebuild under the storm.
    let mut metrics_client = Client::connect(addr);
    let (status, body) = metrics_client.request("GET", "/v1/metrics", None);
    assert_eq!(status, 200);
    let Response::Metrics { deployments, total } = Response::parse_json(&body).unwrap() else {
        panic!("unexpected metrics payload: {body}");
    };
    assert_eq!(deployments.len(), 2);
    for d in &deployments {
        assert_eq!(
            d.metrics.matrix_builds,
            KINDS.len() as u64,
            "{}",
            d.deployment
        );
        assert_eq!(d.metrics.queries_served, 4 * 24, "{}", d.deployment);
        assert_eq!(
            d.metrics.cache_hits,
            4 * 24,
            "{}: warmed batches must be all-hit",
            d.deployment
        );
        assert_eq!(d.metrics.cache_misses, 0, "{}", d.deployment);
    }
    assert_eq!(total.queries_served, 2 * 4 * 24);
    assert_eq!(total.matrix_builds, 2 * KINDS.len() as u64);
    drop(metrics_client);

    // The same stream through the CLI transport (Service::stream_batch is
    // exactly what `tfsn serve-batch` drives) must be byte-identical, and
    // both must equal Engine::batch on the same queries.
    for deployment in ["sd", "tiny"] {
        let mut cli_bytes = Vec::new();
        service
            .stream_batch(
                Some(deployment),
                std::io::Cursor::new(stream.as_bytes()),
                &mut cli_bytes,
                tfsn_engine::StreamOptions::timing(false),
            )
            .unwrap();
        let cli_body = String::from_utf8(cli_bytes).unwrap();

        let engine = service.engine(Some(deployment)).unwrap();
        let mut direct = engine.batch(&queries(24), &BatchOptions::with_threads(2));
        direct.iter_mut().for_each(|a| a.strip_timing());
        let direct_body: String = direct
            .iter()
            .map(|a| serde_json::to_string(a).unwrap() + "\n")
            .collect();

        assert_eq!(
            cli_body, direct_body,
            "{deployment}: CLI transport differs from Engine::batch"
        );
        let http_runs: Vec<&String> = bodies
            .iter()
            .filter(|(d, _)| d == deployment)
            .map(|(_, b)| b)
            .collect();
        assert_eq!(http_runs.len(), 4);
        for http_body in http_runs {
            assert_eq!(
                http_body, &cli_body,
                "{deployment}: HTTP transport differs from CLI transport"
            );
        }
    }

    server.shutdown();
}

#[test]
fn endpoints_errors_and_keep_alive() {
    let service = two_deployment_service();
    let server = HttpServer::bind(
        service,
        "127.0.0.1:0",
        ServerOptions {
            keep_alive: std::time::Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // One keep-alive connection drives every check below.
    let mut client = Client::connect(addr);

    let (status, body) = client.request("GET", "/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Single query, bare answer with the id echoed.
    let (status, body) = client.request(
        "POST",
        "/v1/query?deployment=tiny&timing=0",
        Some(r#"{"id": 9, "task": [1, 2]}"#),
    );
    assert_eq!(status, 200, "{body}");
    let answer: tfsn_engine::TeamAnswer = serde_json::from_str(body.trim()).unwrap();
    assert_eq!(answer.id, Some(9));
    assert_eq!(answer.micros, 0, "timing=0 must strip latency fields");

    // Deployment listing reflects lazy loading: only tiny is loaded.
    let (status, body) = client.request("GET", "/v1/deployments", None);
    assert_eq!(status, 200);
    let Response::Deployments(infos) = Response::parse_json(&body).unwrap() else {
        panic!("unexpected listing: {body}");
    };
    assert_eq!(infos.len(), 2);
    assert!(infos[0].default && !infos[0].loaded, "sd never touched");
    assert!(infos[1].loaded, "tiny served the query above");

    // Stats for a named deployment.
    let (status, body) = client.request("GET", "/v1/stats?deployment=tiny", None);
    assert_eq!(status, 200);
    let Response::Stats(stats) = Response::parse_json(&body).unwrap() else {
        panic!("unexpected stats: {body}");
    };
    assert_eq!(stats.dataset.users, 120);

    // Error mapping: unknown deployment -> 404 typed envelope.
    let (status, body) = client.request("GET", "/v1/stats?deployment=prod", None);
    assert_eq!(status, 404, "{body}");
    match Response::parse_json(&body).unwrap().error() {
        Some(ServiceError::UnknownDeployment { name, available }) => {
            assert_eq!(name, "prod");
            assert_eq!(available, &["sd".to_string(), "tiny".to_string()]);
        }
        other => panic!("unexpected error {other:?}"),
    }

    // Unsupported version via rpc -> 400 typed envelope.
    let (status, body) =
        client.request("POST", "/v1/rpc", Some(r#"{"version": 99, "op": "stats"}"#));
    assert_eq!(status, 400);
    assert!(
        matches!(
            Response::parse_json(&body).unwrap().error(),
            Some(ServiceError::UnsupportedVersion { requested: 99, .. })
        ),
        "{body}"
    );

    // Bad batch line -> 400 with the line number.
    let (status, body) = client.request("POST", "/v1/batch", Some("{\"task\": [1]}\nnot json\n"));
    assert_eq!(status, 400);
    match Response::parse_json(&body).unwrap().error() {
        Some(ServiceError::BadRequest { detail }) => {
            assert!(detail.starts_with("line 2:"), "got: {detail}")
        }
        other => panic!("unexpected error {other:?}"),
    }

    // Unknown path -> 404; wrong method on a known path -> 405.
    let (status, _) = client.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/v1/batch", None);
    assert_eq!(status, 405);

    // The connection survived all of the above (keep-alive): one more
    // healthy request on the same socket.
    let (status, body) = client.request("GET", "/healthz", None);
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Shutdown over HTTP is an opt-in; this server did not opt in.
    let (status, body) = client.request("POST", "/v1/shutdown", None);
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("--allow-shutdown"), "{body}");

    // Close before shutdown so no worker sits out the idle timeout.
    drop(client);
    server.shutdown();
}

#[test]
fn mutate_endpoint_applies_live_edge_changes() {
    let service = two_deployment_service();
    let server = HttpServer::bind(
        service.clone(),
        "127.0.0.1:0",
        ServerOptions {
            keep_alive: std::time::Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr());

    // Mutating a never-loaded deployment is a typed 400 and must not load.
    let (status, body) = client.request(
        "POST",
        "/v1/mutate?deployment=tiny",
        Some(r#"{"op": "edge_set_sign", "u": 0, "v": 1, "sign": "-"}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not loaded"), "{body}");
    let (_, listing) = client.request("GET", "/v1/deployments", None);
    assert!(
        !listing.contains("\"loaded\":true"),
        "mutation must not force a load: {listing}"
    );

    // Load tiny with a query, then mutate it for real.
    let (status, _) = client.request(
        "POST",
        "/v1/query?deployment=tiny",
        Some(r#"{"task": [0]}"#),
    );
    assert_eq!(status, 200);
    let insert = r#"{"op": "edge_insert", "u": 0, "v": 1, "sign": "+"}"#;
    let (status, body) = client.request("POST", "/v1/mutate?deployment=tiny", Some(insert));
    if status != 200 {
        // The fixed seed may already have edge (0, 1): remove it first,
        // then the insert must succeed.
        assert!(body.contains("already exists"), "{body}");
        let (status, body) = client.request(
            "POST",
            "/v1/mutate?deployment=tiny",
            Some(r#"{"op": "edge_remove", "u": 0, "v": 1}"#),
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = client.request("POST", "/v1/mutate?deployment=tiny", Some(insert));
        assert_eq!(status, 200, "{body}");
        match Response::parse_json(&body).unwrap() {
            Response::Mutated {
                deployment,
                mutation,
                changed,
                ..
            } => {
                assert_eq!(deployment, "tiny");
                assert_eq!(mutation, "edge_insert");
                assert!(changed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Metrics now report the applied mutations.
    let (status, body) = client.request("GET", "/v1/metrics", None);
    assert_eq!(status, 200);
    let Response::Metrics { total, .. } = Response::parse_json(&body).unwrap() else {
        panic!("unexpected metrics payload: {body}");
    };
    assert!(total.mutations_applied >= 1, "{body}");

    // Malformed mutation bodies are clean 400s, not connection drops.
    let (status, body) = client.request("POST", "/v1/mutate?deployment=tiny", Some("not json"));
    assert_eq!(status, 400, "{body}");
    let (status, body) = client.request(
        "POST",
        "/v1/mutate?deployment=tiny",
        Some(r#"{"op": "warm"}"#),
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not a mutation op"), "{body}");

    drop(client);
    server.shutdown();
}

#[test]
fn shutdown_handle_and_endpoint_stop_a_joined_server() {
    // Handle path: a thread triggers the handle while join() blocks.
    let server = HttpServer::bind(
        two_deployment_service(),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .unwrap();
    let handle = server.shutdown_handle();
    assert!(!handle.is_shutdown());
    let trigger = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.shutdown();
    });
    server.join(); // must return once the handle fires
    trigger.join().unwrap();

    // Endpoint path: POST /v1/shutdown on an opted-in server acknowledges,
    // then join() returns — the CI smoke's replacement for kill-by-PID.
    let server = HttpServer::bind(
        two_deployment_service(),
        "127.0.0.1:0",
        ServerOptions {
            allow_shutdown: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let observer = server.shutdown_handle();
    let client_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.request("POST", "/v1/shutdown", None)
    });
    server.join();
    let (status, body) = client_thread.join().unwrap();
    assert_eq!((status, body.as_str()), (200, "shutting down\n"));
    assert!(observer.is_shutdown());
}

#[test]
fn prometheus_scrape_and_telemetry_endpoint() {
    let service = two_deployment_service();
    let server = HttpServer::bind(service, "127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.addr());

    // Drive 24 queries through the default deployment (sd) so every
    // telemetry axis has samples.
    let (status, body) = client.request("POST", "/v1/batch", Some(&jsonl(&queries(24))));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.lines().count(), 24);

    // The Prometheus scrape: valid exposition lines, label-closed over
    // ops for the loaded deployment, cumulative buckets closed by +Inf.
    let text = client.0.metrics_text().expect("GET /metrics");
    assert!(
        text.contains("# TYPE tfsn_op_latency_seconds histogram"),
        "{text}"
    );
    assert!(text.contains("tfsn_queries_served_total{deployment=\"sd\"} 24"));
    assert!(
        !text.contains("deployment=\"tiny\""),
        "tiny was never loaded and must not be scraped"
    );
    for op in ["query", "batch", "mutate", "warm"] {
        assert!(
            text.contains(&format!(
                "tfsn_op_latency_seconds_count{{deployment=\"sd\",op=\"{op}\"}}"
            )),
            "missing op {op} in scrape"
        );
    }
    for phase in ["build_wait", "row_compute", "solve", "serialize"] {
        assert!(
            text.contains(&format!(
                "tfsn_phase_latency_seconds_count{{deployment=\"sd\",phase=\"{phase}\"}}"
            )),
            "missing phase {phase} in scrape"
        );
    }
    let mut last = 0u64;
    let mut saw_inf = false;
    for line in text.lines() {
        let Some(rest) =
            line.strip_prefix("tfsn_op_latency_seconds_bucket{deployment=\"sd\",op=\"query\",le=")
        else {
            continue;
        };
        let value: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= last, "buckets must be cumulative: {line}");
        last = value;
        if rest.starts_with("\"+Inf\"") {
            saw_inf = true;
            assert_eq!(value, 24, "+Inf closes the series at the count");
        }
    }
    assert!(saw_inf, "+Inf line missing from scrape:\n{text}");
    // Every query went through one of the three exercised kinds.
    assert!(text.contains("tfsn_kind_queries_total{deployment=\"sd\",kind=\"SPA\"} 8"));
    assert!(text.contains("tfsn_kind_queries_total{deployment=\"sd\",kind=\"DPE\"} 0"));

    // The JSON telemetry endpoint agrees with the scrape.
    let (status, body) = client.request("GET", "/v1/telemetry", None);
    assert_eq!(status, 200, "{body}");
    let Response::Telemetry { deployments } = Response::parse_json(&body).unwrap() else {
        panic!("unexpected telemetry response: {body}");
    };
    assert_eq!(deployments.len(), 1);
    assert_eq!(deployments[0].deployment, "sd");
    let report = &deployments[0].telemetry;
    let query_axis = report
        .ops
        .iter()
        .find(|axis| axis.label == "query")
        .expect("query axis");
    assert_eq!(query_axis.stats.count, 24);
    assert!(query_axis.stats.p50_micros <= query_axis.stats.p999_micros);
    assert!(!report.slow_queries.is_empty());
    let slowest = &report.slow_queries[0];
    assert_eq!(
        slowest.total_micros,
        slowest.build_wait_micros + slowest.row_compute_micros + slowest.solve_micros,
        "phase breakdown must tile the total"
    );

    // Wrong method on the scrape path -> 405, not 404.
    let (status, _) = client.request("POST", "/metrics", None);
    assert_eq!(status, 405);

    drop(client);
    server.shutdown();
}
