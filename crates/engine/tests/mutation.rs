//! The live-mutation correctness suite: an arbitrary interleave of edge
//! mutations and team queries must answer **byte-identically** to an engine
//! rebuilt from scratch on the mutated edge list — for every compatibility
//! kind, in both the matrix and the (budgeted) row serving modes — plus the
//! accounting, downgrade, concurrency and typed-error edge cases.

use std::sync::Arc;

use proptest::prelude::*;
use signed_graph::{EdgeChange, EdgeMutation, GraphBuilder, NodeId, Sign};
use tfsn_core::compat::{row_affected_by_edge, CompatibilityKind};
use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource};
use tfsn_engine::{
    Deployment, Engine, EngineOptions, Request, RequestBody, Response, Service, ServiceError,
    StorePolicy, TeamQuery, TierChoice,
};

const NODES: usize = 22;

/// A small deterministic deployment: a signed ring with chords plus a
/// detached positive pair (so frontier invalidation has an unaffected
/// component to spare), and a handful of skills.
fn base_deployment() -> Deployment {
    let mut b = GraphBuilder::with_nodes(NODES);
    for i in 0..NODES - 2 {
        let sign = if i % 5 == 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        b.add_edge(NodeId::new(i), NodeId::new((i + 1) % (NODES - 2)), sign)
            .unwrap();
    }
    for i in (0..NODES - 4).step_by(4) {
        let _ = b.add_edge(NodeId::new(i), NodeId::new(i + 3), Sign::Positive);
    }
    // The detached pair (NODES-2, NODES-1).
    b.add_edge(
        NodeId::new(NODES - 2),
        NodeId::new(NODES - 1),
        Sign::Positive,
    )
    .unwrap();
    let graph = b.build();
    let mut universe = tfsn_skills::SkillUniverse::new();
    let skills: Vec<_> = (0..6).map(|i| universe.intern(&format!("s{i}"))).collect();
    let mut assignment = tfsn_skills::assignment::SkillAssignment::new(universe.len(), NODES);
    for u in 0..NODES {
        assignment.grant(u, skills[u % skills.len()]);
        assignment.grant(u, skills[(u * 3 + 1) % skills.len()]);
    }
    Deployment::new("mutation-fixture", graph, universe, assignment).unwrap()
}

/// Rebuilds a deployment whose graph is `graph_of(engine)`'s current edge
/// list, sharing the original skills — the from-scratch reference.
fn rebuild_deployment(engine: &Engine) -> Deployment {
    let live = engine.graph();
    let mut b = GraphBuilder::with_nodes(live.node_count());
    for e in live.edges() {
        b.add_edge(e.u, e.v, e.sign).unwrap();
    }
    Deployment::new(
        "rebuilt",
        b.build(),
        engine.deployment().universe().clone(),
        engine.deployment().skills().clone(),
    )
    .unwrap()
}

fn options(policy: StorePolicy) -> EngineOptions {
    EngineOptions {
        policy,
        build_threads: 2,
        ..Default::default()
    }
}

/// Normalizes an answer for cross-engine comparison: timing fields and the
/// cache attribution depend on serving history, not on the answer.
fn canonical(mut answer: tfsn_engine::TeamAnswer) -> String {
    answer.strip_timing();
    answer.cache_hit = false;
    serde_json::to_string(&answer).unwrap()
}

/// One step of the interleave.
#[derive(Debug, Clone)]
enum Step {
    Mutate(EdgeMutation),
    Query(TeamQuery),
}

fn step((sel, u, v, s, skills): (usize, usize, usize, usize, (usize, usize))) -> Step {
    let sign = if s % 2 == 0 {
        Sign::Positive
    } else {
        Sign::Negative
    };
    let (u, v) = (NodeId::new(u % NODES), NodeId::new(v % NODES));
    match sel % 6 {
        0 => Step::Mutate(EdgeMutation::Insert { u, v, sign }),
        1 => Step::Mutate(EdgeMutation::Remove { u, v }),
        2 => Step::Mutate(EdgeMutation::SetSign { u, v, sign }),
        _ => Step::Query(
            TeamQuery::new([skills.0 % 6, skills.1 % 6])
                .with_id(sel as u64)
                .with_kind(CompatibilityKind::ALL[s % CompatibilityKind::ALL.len()]),
        ),
    }
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0usize..12,
            0usize..NODES + 2, // occasionally out of range: typed error, no state change
            0usize..NODES,
            0usize..14,
            (0usize..8, 0usize..8),
        )
            .prop_map(step),
        1..10,
    )
}

/// Runs one interleave against a live engine and asserts every query
/// answers byte-identically to a from-scratch engine on the current edge
/// list, then does one final all-kinds sweep.
fn check_interleave(policy: StorePolicy, steps: &[Step]) {
    let engine = Engine::with_options(base_deployment(), options(policy));
    // Warm a couple of kinds so mutations hit resident state, not just
    // cold shards.
    engine.warm(&[CompatibilityKind::Spo, CompatibilityKind::Nne]);
    let mut mutations_applied = 0u64;
    for s in steps {
        match s {
            Step::Mutate(m) => {
                if engine.mutate(m).is_ok() {
                    mutations_applied += 1;
                }
            }
            Step::Query(q) => {
                let live = engine.query(q);
                let reference = Engine::with_options(
                    rebuild_deployment(&engine),
                    options(*engine.store().policy()),
                );
                let fresh = reference.query(q);
                prop_assert_eq!(
                    canonical(live),
                    canonical(fresh),
                    "query {:?} diverged after {} mutation(s)",
                    q,
                    mutations_applied
                );
            }
        }
    }
    // Final sweep: every kind agrees with the rebuilt engine.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(*engine.store().policy()),
    );
    for (i, &kind) in CompatibilityKind::ALL.iter().enumerate() {
        let q = TeamQuery::new([i % 6, (i + 2) % 6])
            .with_id(1000 + i as u64)
            .with_kind(kind);
        prop_assert_eq!(
            canonical(engine.query(&q)),
            canonical(reference.query(&q)),
            "final sweep diverged for {}",
            kind
        );
    }
    prop_assert_eq!(engine.metrics().mutations_applied, mutations_applied);
}

/// Proptest case count, overridable for the nightly deep run.
fn cases() -> u32 {
    std::env::var("TFSN_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The acceptance property, matrix mode: mutations downgrade resident
    /// matrices to seeded row stores; answers must not move.
    #[test]
    fn interleave_matches_rebuild_matrix_mode(steps in steps_strategy()) {
        check_interleave(StorePolicy::materialized(), &steps);
    }

    /// The acceptance property, row mode under a budget tight enough to
    /// force eviction interplay with invalidation.
    #[test]
    fn interleave_matches_rebuild_row_mode(steps in steps_strategy()) {
        let budget = 8 * tfsn_core::compat::estimated_row_bytes(NODES);
        check_interleave(StorePolicy::rows(Some(budget)), &steps);
    }
}

#[test]
fn frontier_invalidation_is_minimal_and_rebuilds_exactly_once() {
    let engine = Engine::with_options(base_deployment(), options(StorePolicy::rows(None)));
    let kind = CompatibilityKind::Spo;
    // Warm every row with a full pair scan.
    let fetched = engine.store().fetch(kind);
    let scope = fetched.scope();
    for u in 0..NODES {
        for v in 0..NODES {
            scope.compat().compatible(NodeId::new(u), NodeId::new(v));
        }
    }
    assert_eq!(engine.store().row_build_count(), NODES);
    // Compute the expected casualty set from the resident rows *before*
    // mutating, with the same predicate the store applies.
    let (u, v) = (NodeId::new(0), NodeId::new(3));
    let expected: usize = (0..NODES)
        .filter(|&s| {
            let row = match fetched.scope().compat().packed_row(NodeId::new(s)) {
                Some(handle) => handle.row().clone(),
                None => panic!("row tier exposes packed rows"),
            };
            row_affected_by_edge(&row, u, v)
        })
        .count();
    let report = engine
        .mutate(&EdgeMutation::Remove { u, v })
        .expect("edge (0, 3) exists in the fixture");
    assert!(matches!(report.effect.change, EdgeChange::Removed(_)));
    assert_eq!(report.rows_invalidated, expected);
    assert!(
        expected < NODES,
        "the detached pair's rows must survive a ring mutation"
    );
    assert_eq!(
        engine.store().resident_row_count(),
        NODES - expected,
        "unaffected rows stay resident"
    );
    // A full re-scan rebuilds each invalidated row exactly once.
    let fetched = engine.store().fetch(kind);
    let scope = fetched.scope();
    for s in 0..NODES {
        for t in 0..NODES {
            scope.compat().compatible(NodeId::new(s), NodeId::new(t));
        }
    }
    assert_eq!(engine.store().row_build_count(), NODES + expected);
    let m = engine.metrics();
    assert_eq!(m.mutations_applied, 1);
    assert_eq!(m.rows_invalidated, expected as u64);
}

#[test]
fn matrix_shard_downgrades_to_seeded_rows_instead_of_rebuilding() {
    let engine = Engine::with_options(base_deployment(), options(StorePolicy::materialized()));
    let kind = CompatibilityKind::Spa;
    engine.warm(&[kind]);
    assert_eq!(engine.store().build_count(), 1);
    assert_eq!(engine.store().resident_tier(kind), Some(TierChoice::Matrix));
    let report = engine
        .mutate(&EdgeMutation::SetSign {
            u: NodeId::new(1),
            v: NodeId::new(2),
            sign: Sign::Negative,
        })
        .unwrap();
    assert_eq!(report.kinds_downgraded, vec![kind]);
    assert_eq!(engine.store().resident_tier(kind), Some(TierChoice::Rows));
    assert_eq!(
        engine.store().build_count(),
        1,
        "no eager matrix rebuild on mutation"
    );
    // The detached pair's matrix rows migrated instead of recomputing.
    assert!(engine.store().resident_row_count() >= 2);
    assert_eq!(
        report.rows_invalidated + engine.store().resident_row_count(),
        NODES
    );
    // Answers equal a fresh matrix-mode engine on the mutated graph.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::materialized()),
    );
    for task in [[0usize, 1], [2, 4], [1, 5]] {
        let q = TeamQuery::new(task).with_kind(kind);
        assert_eq!(canonical(engine.query(&q)), canonical(reference.query(&q)));
    }
}

#[test]
fn budgeted_downgrade_counts_unmigrated_rows_as_invalidated() {
    // Forced matrix mode ignores the budget at build time, but the
    // downgrade's row store honours it: only a few matrix rows can
    // migrate, and every row that did not survive must be accounted
    // invalidated (it will recompute on next fetch).
    let budget = 4 * tfsn_core::compat::estimated_row_bytes(NODES);
    let engine = Engine::with_options(
        base_deployment(),
        options(StorePolicy {
            mode: tfsn_engine::ServingMode::Matrix,
            memory_budget: Some(budget),
        }),
    );
    let kind = CompatibilityKind::Spo;
    engine.warm(&[kind]);
    assert_eq!(engine.store().resident_tier(kind), Some(TierChoice::Matrix));
    let report = engine
        .mutate(&EdgeMutation::SetSign {
            u: NodeId::new(1),
            v: NodeId::new(2),
            sign: Sign::Negative,
        })
        .unwrap();
    let resident = engine.store().resident_row_count();
    assert!(resident <= 4, "the budget holds at most 4 rows: {resident}");
    assert_eq!(
        report.rows_invalidated + resident,
        NODES,
        "every non-migrated row counts as invalidated"
    );
    assert_eq!(
        engine.metrics().rows_invalidated,
        report.rows_invalidated as u64
    );
    // Answers still match a from-scratch engine on the mutated graph.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::materialized()),
    );
    for task in [[0usize, 1], [2, 4]] {
        let q = TeamQuery::new(task).with_kind(kind);
        assert_eq!(canonical(engine.query(&q)), canonical(reference.query(&q)));
    }
}

#[test]
fn noop_sign_set_applies_without_invalidating() {
    let engine = Engine::with_options(base_deployment(), options(StorePolicy::rows(None)));
    engine.warm(&[CompatibilityKind::Spo]);
    let fetched = engine.store().fetch(CompatibilityKind::Spo);
    let scope = fetched.scope();
    for u in 0..NODES {
        scope
            .compat()
            .compatible(NodeId::new(u), NodeId::new((u + 1) % NODES));
    }
    let resident = engine.store().resident_row_count();
    let report = engine
        .mutate(&EdgeMutation::SetSign {
            u: NodeId::new(1),
            v: NodeId::new(2),
            sign: Sign::Positive, // already positive in the fixture
        })
        .unwrap();
    assert!(matches!(report.effect.change, EdgeChange::Unchanged(_)));
    assert!(!report.effect.changed());
    assert_eq!(report.rows_invalidated, 0);
    assert_eq!(engine.store().resident_row_count(), resident);
    let m = engine.metrics();
    assert_eq!((m.mutations_applied, m.rows_invalidated), (1, 0));
}

#[test]
fn removing_the_last_edge_isolates_a_node_and_queries_survive() {
    let engine = Engine::with_options(base_deployment(), options(StorePolicy::rows(None)));
    // (NODES-2, NODES-1) is the detached pair's only edge.
    let report = engine
        .mutate(&EdgeMutation::Remove {
            u: NodeId::new(NODES - 2),
            v: NodeId::new(NODES - 1),
        })
        .unwrap();
    assert!(report.effect.changed());
    let live = engine.graph();
    assert_eq!(live.degree(NodeId::new(NODES - 1)), 0);
    assert_eq!(live.node_count(), NODES, "isolated nodes stay addressable");
    // Every kind still answers, identically to a rebuild.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::rows(None)),
    );
    for &kind in &CompatibilityKind::ALL {
        let q = TeamQuery::new([0, 3]).with_kind(kind);
        assert_eq!(canonical(engine.query(&q)), canonical(reference.query(&q)));
    }
}

#[test]
fn concurrent_readers_see_consistent_snapshots() {
    let engine = Arc::new(Engine::with_options(
        base_deployment(),
        options(StorePolicy::rows(Some(
            6 * tfsn_core::compat::estimated_row_bytes(NODES),
        ))),
    ));
    engine.warm(&[CompatibilityKind::Spo, CompatibilityKind::Nne]);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..4 {
            let engine = engine.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let kind = if t % 2 == 0 {
                        CompatibilityKind::Spo
                    } else {
                        CompatibilityKind::Nne
                    };
                    let q = TeamQuery::new([i % 6, (i + t) % 6]).with_kind(kind);
                    let a = engine.query(&q);
                    assert_eq!(a.cardinality, a.members.len());
                    i += 1;
                }
            });
        }
        // Mutations race the readers: flip, remove, re-insert.
        for round in 0..30 {
            let sign = if round % 2 == 0 {
                Sign::Negative
            } else {
                Sign::Positive
            };
            engine
                .mutate(&EdgeMutation::SetSign {
                    u: NodeId::new(1),
                    v: NodeId::new(2),
                    sign,
                })
                .unwrap();
            if round % 3 == 0 {
                let _ = engine.mutate(&EdgeMutation::Remove {
                    u: NodeId::new(4),
                    v: NodeId::new(5),
                });
            } else if round % 3 == 1 {
                let _ = engine.mutate(&EdgeMutation::Insert {
                    u: NodeId::new(4),
                    v: NodeId::new(5),
                    sign,
                });
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    // Quiesced: the live engine agrees with a from-scratch rebuild.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(*engine.store().policy()),
    );
    for &kind in &[CompatibilityKind::Spo, CompatibilityKind::Nne] {
        for task in [[0usize, 1], [2, 3], [4, 5]] {
            let q = TeamQuery::new(task).with_kind(kind);
            assert_eq!(
                canonical(engine.query(&q)),
                canonical(reference.query(&q)),
                "{kind} diverged after the concurrent storm"
            );
        }
    }
    assert_eq!(engine.metrics().mutations_applied, 30 + 20);
}

// ---------------------------------------------------------------------------
// Service-level typed errors and the never-force-a-load rule.
// ---------------------------------------------------------------------------

fn mutation_service() -> Service {
    let registry = DeploymentRegistry::new(vec![
        DeploymentConfig::new("live", DeploymentSource::Prebuilt(base_deployment())),
        DeploymentConfig::new(
            "cold",
            DeploymentSource::parse("synthetic:nodes=50,edges=150,skills=8,seed=3").unwrap(),
        ),
    ])
    .unwrap();
    Service::new(registry)
}

#[test]
fn service_mutations_map_graph_errors_to_bad_request() {
    let service = mutation_service();
    // Load the default deployment so mutations are admissible at all.
    service.engine(Some("live")).unwrap();
    // Unknown node: typed bad_request naming the bound.
    let response = service.handle(&Request::new(RequestBody::EdgeInsert {
        u: 0,
        v: 9999,
        sign: Sign::Positive,
    }));
    match response.error() {
        Some(ServiceError::BadRequest { detail }) => {
            assert!(detail.contains("9999"), "got: {detail}")
        }
        other => panic!("unexpected {other:?}"),
    }
    // A self-referenced pair is rejected before touching anything.
    let response = service.handle(&Request::new(RequestBody::EdgeSetSign {
        u: 7,
        v: 7,
        sign: Sign::Negative,
    }));
    match response.error() {
        Some(ServiceError::BadRequest { detail }) => {
            assert!(detail.contains("self-loop"), "got: {detail}")
        }
        other => panic!("unexpected {other:?}"),
    }
    // Removing a missing edge is typed too.
    let response = service.handle(&Request::new(RequestBody::EdgeRemove {
        u: 0,
        v: NODES - 1,
    }));
    match response.error() {
        Some(ServiceError::BadRequest { detail }) => {
            assert!(detail.contains("does not exist"), "got: {detail}")
        }
        other => panic!("unexpected {other:?}"),
    }
    // A valid mutation answers with the typed acknowledgement.
    let response = service.handle(&Request::new(RequestBody::EdgeSetSign {
        u: 1,
        v: 2,
        sign: Sign::Negative,
    }));
    match response {
        Response::Mutated {
            deployment,
            mutation,
            changed,
            edges,
            ..
        } => {
            assert_eq!(deployment, "live");
            assert_eq!(mutation, "edge_set_sign");
            assert!(changed);
            assert!(edges > 0);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn mutating_a_never_loaded_deployment_does_not_force_a_load() {
    let service = mutation_service();
    let response = service.handle(
        &Request::new(RequestBody::EdgeInsert {
            u: 0,
            v: 1,
            sign: Sign::Positive,
        })
        .on("cold"),
    );
    match response.error() {
        Some(ServiceError::BadRequest { detail }) => {
            assert!(detail.contains("not loaded"), "got: {detail}")
        }
        other => panic!("unexpected {other:?}"),
    }
    let infos = service.registry().infos();
    assert!(
        infos.iter().all(|i| !i.loaded),
        "the mutation must not have loaded anything: {infos:?}"
    );
    // Unknown deployments still map to the 404-shaped typed error.
    let response = service.handle(&Request::new(RequestBody::EdgeRemove { u: 0, v: 1 }).on("prod"));
    assert!(matches!(
        response.error(),
        Some(ServiceError::UnknownDeployment { .. })
    ));
}
