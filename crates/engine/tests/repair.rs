//! The differential repair harness: incremental row repair
//! (`tfsn_core::compat::repair`) and batched mutation invalidation
//! (`RelationStore::mutate_batch`) are pinned against scratch recomputes.
//!
//! Two acceptance properties, each across every compatibility kind and
//! both serving tiers:
//!
//! * **rows**: after an arbitrary mutation batch, every row the store
//!   serves — repaired in place, kept by a no-op proof, or recomputed on
//!   fetch — compares equal (bitset words *and* packed distance lane) to
//!   the same row built from scratch on the mutated edge list;
//! * **fold**: `mutate_batch(ms)` is observably equivalent to folding
//!   `mutate` over `ms` one at a time — same per-mutation outcomes, same
//!   final graph, byte-identical canonicalized answers — while never
//!   invalidating *more* rows than the sequential fold.
//!
//! Case count is 24 by default; the nightly CI job raises it through the
//! `TFSN_PROPTEST_CASES` environment variable.

use proptest::prelude::*;
use signed_graph::{EdgeMutation, GraphBuilder, NodeId, Sign};
use tfsn_core::compat::CompatibilityKind;
use tfsn_engine::{Deployment, Engine, EngineOptions, StorePolicy, TeamQuery};

const NODES: usize = 22;

/// Proptest case count, overridable for the nightly deep run.
fn cases() -> u32 {
    std::env::var("TFSN_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// The mutation fixture: a signed ring with chords plus a detached
/// positive pair, so batches hit both on-DAG and provably-unaffected rows.
fn base_deployment() -> Deployment {
    let mut b = GraphBuilder::with_nodes(NODES);
    for i in 0..NODES - 2 {
        let sign = if i % 5 == 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        b.add_edge(NodeId::new(i), NodeId::new((i + 1) % (NODES - 2)), sign)
            .unwrap();
    }
    for i in (0..NODES - 4).step_by(4) {
        let _ = b.add_edge(NodeId::new(i), NodeId::new(i + 3), Sign::Positive);
    }
    b.add_edge(
        NodeId::new(NODES - 2),
        NodeId::new(NODES - 1),
        Sign::Positive,
    )
    .unwrap();
    let graph = b.build();
    let mut universe = tfsn_skills::SkillUniverse::new();
    let skills: Vec<_> = (0..6).map(|i| universe.intern(&format!("s{i}"))).collect();
    let mut assignment = tfsn_skills::assignment::SkillAssignment::new(universe.len(), NODES);
    for u in 0..NODES {
        assignment.grant(u, skills[u % skills.len()]);
        assignment.grant(u, skills[(u * 3 + 1) % skills.len()]);
    }
    Deployment::new("repair-fixture", graph, universe, assignment).unwrap()
}

/// A deployment rebuilt from the engine's *current* edge list — the
/// from-scratch reference every comparison runs against.
fn rebuild_deployment(engine: &Engine) -> Deployment {
    let live = engine.graph();
    let mut b = GraphBuilder::with_nodes(live.node_count());
    for e in live.edges() {
        b.add_edge(e.u, e.v, e.sign).unwrap();
    }
    Deployment::new(
        "rebuilt",
        b.build(),
        engine.deployment().universe().clone(),
        engine.deployment().skills().clone(),
    )
    .unwrap()
}

fn options(policy: StorePolicy) -> EngineOptions {
    EngineOptions {
        policy,
        build_threads: 2,
        ..Default::default()
    }
}

fn graph_bytes(engine: &Engine) -> String {
    format!("{:?}", engine.graph().edges())
}

fn canonical(mut answer: tfsn_engine::TeamAnswer) -> String {
    answer.strip_timing();
    answer.cache_hit = false;
    serde_json::to_string(&answer).unwrap()
}

/// Forces every row of every kind resident (rows tier) or built (matrix
/// tier), so the subsequent batch mutates live state rather than cold
/// shards.
fn resident_sweep(engine: &Engine, kinds: &[CompatibilityKind]) {
    for &kind in kinds {
        let fetched = engine.store().fetch(kind);
        let scope = fetched.scope();
        for u in 0..NODES {
            let _ = scope.compat().packed_row(NodeId::new(u));
        }
    }
}

fn mutation((sel, u, v, s): (usize, usize, usize, usize)) -> EdgeMutation {
    let sign = if s % 2 == 0 {
        Sign::Positive
    } else {
        Sign::Negative
    };
    // Occasionally out of range: a typed per-mutation rejection that must
    // not derail the rest of the batch.
    let (u, v) = (NodeId::new(u), NodeId::new(v % NODES));
    match sel % 3 {
        0 => EdgeMutation::Insert { u, v, sign },
        1 => EdgeMutation::Remove { u, v },
        _ => EdgeMutation::SetSign { u, v, sign },
    }
}

fn mutations_strategy() -> impl Strategy<Value = Vec<EdgeMutation>> {
    prop::collection::vec(
        (0usize..3, 0usize..NODES + 2, 0usize..NODES, 0usize..2).prop_map(mutation),
        1..10,
    )
}

/// Property one: every row the engine serves after a batch equals its
/// scratch recompute — the repaired-in-place rows are the interesting
/// cases, but the comparison sweeps all of them.
fn check_rows_match_scratch(policy: StorePolicy, mutations: &[EdgeMutation]) {
    let engine = Engine::with_options(base_deployment(), options(policy));
    resident_sweep(&engine, &CompatibilityKind::ALL);
    let report = engine.mutate_batch(mutations).expect("no WAL is attached");
    prop_assert_eq!(report.outcomes.len(), mutations.len());
    // Two scratch references, one per tier: a mutated matrix-mode engine
    // serves downgraded *per-source* rows for the touched kinds, and an
    // SBPH/SBP per-source row is a forward lower bound that legitimately
    // differs from the symmetric-closed matrix row — so each kind compares
    // against a reference serving from the same tier it resides in.
    let ref_rows = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::rows(None)),
    );
    let ref_matrix = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::materialized()),
    );
    for kind in CompatibilityKind::ALL {
        let live = engine.store().fetch(kind);
        let reference = match engine.store().resident_tier(kind) {
            Some(tfsn_engine::TierChoice::Matrix) => &ref_matrix,
            _ => &ref_rows,
        };
        let fresh = reference.store().fetch(kind);
        for u in 0..NODES {
            let l = live
                .scope()
                .compat()
                .packed_row(NodeId::new(u))
                .map(|h| h.row().clone());
            let r = fresh
                .scope()
                .compat()
                .packed_row(NodeId::new(u))
                .map(|h| h.row().clone());
            prop_assert_eq!(l, r, "{} row {} diverged after {:?}", kind, u, mutations);
        }
    }
}

/// Property two: the batch is the sequential fold — same outcomes, same
/// graph, same answers, no extra invalidation.
fn check_batch_equals_fold(policy: StorePolicy, mutations: &[EdgeMutation]) {
    let batched = Engine::with_options(base_deployment(), options(policy));
    let folded = Engine::with_options(base_deployment(), options(*batched.store().policy()));
    resident_sweep(&batched, &CompatibilityKind::ALL);
    resident_sweep(&folded, &CompatibilityKind::ALL);
    let report = batched.mutate_batch(mutations).expect("no WAL is attached");
    let mut fold_outcomes = Vec::new();
    let mut fold_invalidated = 0usize;
    for m in mutations {
        match folded.mutate(m) {
            Ok(r) => {
                fold_invalidated += r.rows_invalidated;
                fold_outcomes.push(Ok(r.effect));
            }
            Err(tfsn_engine::MutateError::Graph(e)) => fold_outcomes.push(Err(e)),
            Err(e) => panic!("WAL-less engines only fail validation: {e:?}"),
        }
    }
    prop_assert_eq!(
        format!("{:?}", report.outcomes),
        format!("{fold_outcomes:?}"),
        "per-mutation outcomes must match the sequential fold"
    );
    prop_assert_eq!(graph_bytes(&batched), graph_bytes(&folded));
    prop_assert!(
        report.rows_invalidated <= fold_invalidated,
        "one merged sweep must not invalidate more than {fold_invalidated} \
         sequential sweeps did (got {})",
        report.rows_invalidated
    );
    for (i, &kind) in CompatibilityKind::ALL.iter().enumerate() {
        let q = TeamQuery::new([i % 6, (i + 2) % 6])
            .with_id(i as u64)
            .with_kind(kind);
        prop_assert_eq!(
            canonical(batched.query(&q)),
            canonical(folded.query(&q)),
            "answers diverged for {} after {:?}",
            kind,
            mutations
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn repaired_rows_match_scratch_in_row_mode(mutations in mutations_strategy()) {
        check_rows_match_scratch(StorePolicy::rows(None), &mutations);
    }

    #[test]
    fn repaired_rows_match_scratch_in_matrix_mode(mutations in mutations_strategy()) {
        check_rows_match_scratch(StorePolicy::materialized(), &mutations);
    }

    #[test]
    fn repaired_rows_match_scratch_under_a_row_budget(mutations in mutations_strategy()) {
        let budget = 8 * tfsn_core::compat::estimated_row_bytes(NODES);
        check_rows_match_scratch(StorePolicy::rows(Some(budget)), &mutations);
    }

    #[test]
    fn mutate_batch_equals_sequential_fold_in_row_mode(mutations in mutations_strategy()) {
        check_batch_equals_fold(StorePolicy::rows(None), &mutations);
    }

    #[test]
    fn mutate_batch_equals_sequential_fold_in_matrix_mode(mutations in mutations_strategy()) {
        check_batch_equals_fold(StorePolicy::materialized(), &mutations);
    }
}

/// Sign flips on NNE-resident rows patch in place: no invalidation, no
/// rebuild on the next sweep, and the patched rows equal scratch rows.
#[test]
fn sign_flip_batches_repair_nne_rows_without_rebuilds() {
    let engine = Engine::with_options(base_deployment(), options(StorePolicy::rows(None)));
    resident_sweep(&engine, &[CompatibilityKind::Nne]);
    let builds = engine.store().row_build_count();
    assert_eq!(builds, NODES);
    let flips: Vec<EdgeMutation> = engine
        .graph()
        .edges()
        .iter()
        .take(4)
        .map(|e| EdgeMutation::SetSign {
            u: e.u,
            v: e.v,
            sign: e.sign.flip(),
        })
        .collect();
    let report = engine.mutate_batch(&flips).expect("no WAL is attached");
    assert_eq!(report.applied(), flips.len());
    assert_eq!(
        report.rows_invalidated, 0,
        "NNE sign flips always repair in place"
    );
    assert!(report.rows_repaired > 0, "endpoint rows must be patched");
    assert_eq!(
        engine.store().rows_repaired_count(),
        report.rows_repaired
    );
    resident_sweep(&engine, &[CompatibilityKind::Nne]);
    assert_eq!(
        engine.store().row_build_count(),
        builds,
        "repaired rows must not rebuild"
    );
    // The patched rows are exact.
    let reference = Engine::with_options(
        rebuild_deployment(&engine),
        options(StorePolicy::rows(None)),
    );
    let live = engine.store().fetch(CompatibilityKind::Nne);
    let fresh = reference.store().fetch(CompatibilityKind::Nne);
    for u in 0..NODES {
        assert_eq!(
            live.scope()
                .compat()
                .packed_row(NodeId::new(u))
                .map(|h| h.row().clone()),
            fresh
                .scope()
                .compat()
                .packed_row(NodeId::new(u))
                .map(|h| h.row().clone()),
            "row {u}"
        );
    }
}

/// Regression pin for the hoisted no-op check, on the deployments where it
/// matters most: SBPH/SBP rows have **no** repair path, so a sign-set that
/// changes nothing must short-circuit before the per-kind sweep ever runs —
/// single mutations and all-no-op batches alike. In matrix mode the same
/// short-circuit must also keep the matrix resident (no downgrade).
#[test]
fn noop_sign_sets_never_touch_sbph_or_sbp_residents() {
    for kind in [CompatibilityKind::Sbph, CompatibilityKind::Sbp] {
        let engine = Engine::with_options(base_deployment(), options(StorePolicy::rows(None)));
        resident_sweep(&engine, &[kind]);
        let builds = engine.store().row_build_count();
        let noops: Vec<EdgeMutation> = engine
            .graph()
            .edges()
            .iter()
            .take(3)
            .map(|e| EdgeMutation::SetSign {
                u: e.u,
                v: e.v,
                sign: e.sign, // already this sign: a provable no-op
            })
            .collect();
        // Single no-op through `mutate`.
        let report = engine.mutate(&noops[0]).expect("edge exists");
        assert!(!report.effect.changed());
        assert_eq!(report.rows_invalidated, 0, "{kind}: no-op must not sweep");
        assert_eq!(report.kinds_downgraded, vec![]);
        // All-no-op batch through `mutate_batch`.
        let report = engine.mutate_batch(&noops).expect("no WAL is attached");
        assert_eq!(report.applied(), noops.len());
        assert_eq!(report.changed(), 0);
        assert_eq!(
            report.rows_invalidated, 0,
            "{kind}: no-op batch must not sweep"
        );
        assert_eq!(report.rows_repaired, 0);
        resident_sweep(&engine, &[kind]);
        assert_eq!(
            engine.store().row_build_count(),
            builds,
            "{kind}: resident rows must survive no-ops untouched"
        );

        // Matrix mode: the no-op must not downgrade the resident matrix.
        let engine = Engine::with_options(base_deployment(), options(StorePolicy::materialized()));
        engine.warm(&[kind]);
        assert_eq!(
            engine.store().resident_tier(kind),
            Some(tfsn_engine::TierChoice::Matrix)
        );
        let report = engine.mutate_batch(&noops).expect("no WAL is attached");
        assert_eq!(report.rows_invalidated, 0);
        assert_eq!(report.kinds_downgraded, vec![]);
        assert_eq!(
            engine.store().resident_tier(kind),
            Some(tfsn_engine::TierChoice::Matrix),
            "{kind}: an all-no-op batch must leave the matrix resident"
        );
    }
}
