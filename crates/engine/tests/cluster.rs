//! End-to-end cluster tests: a primary with a write-ahead log, two
//! followers replicating it over `GET /v1/wal`, and a `tfsn route` router
//! in front — all in-process on ephemeral ports.
//!
//! Asserted here:
//! * mutations sent through the router land on the primary, are
//!   WAL-logged, and both followers converge (`replicated_seq` reaches the
//!   primary's `end_seq`; edge sets match the primary *and* a fresh replay
//!   of its WAL);
//! * killing one of two replicas mid-stream loses **zero** reads — the
//!   router transparently retries on the surviving replica;
//! * batch answers through the router are byte-identical to the same
//!   batch served directly by the backing service;
//! * with the primary down, writes answer the typed `no_backend` 503
//!   (with `Retry-After`) while reads keep flowing to replicas.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tfsn_engine::client::RetryPolicy;
use tfsn_engine::cluster::{replica, FollowerOptions, Router, RouterOptions, Topology};
use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource, WalConfig};
use tfsn_engine::server::{HttpServer, ServerOptions};
use tfsn_engine::service::{Service, ServiceOptions, StreamOptions};
use tfsn_engine::{wal, BatchOptions, HttpClient, Response};

const DEPLOYMENT: &str = "net";
const SPEC: &str = "synthetic:nodes=80,edges=240,skills=12,seed=3";

fn service(wal_dir: Option<&std::path::Path>) -> Arc<Service> {
    let mut registry = DeploymentRegistry::new(vec![DeploymentConfig::new(
        DEPLOYMENT,
        DeploymentSource::parse(SPEC).unwrap(),
    )])
    .unwrap();
    if let Some(dir) = wal_dir {
        registry = registry.with_wal(WalConfig::new(dir));
    }
    Arc::new(Service::with_options(
        registry,
        ServiceOptions {
            batch: BatchOptions::with_threads(2),
            chunk: 4, // multi-chunk streaming on the 12-query batches
            objective: None,
        },
    ))
}

fn server(service: Arc<Service>) -> HttpServer {
    HttpServer::bind(
        service,
        "127.0.0.1:0",
        ServerOptions {
            threads: 2,
            // Short, so shutdown's drain (which waits out idle keep-alive
            // handler threads) doesn't dominate the test.
            keep_alive: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
}

fn connect(addr: std::net::SocketAddr) -> HttpClient {
    // No client-side retries: these tests assert on the *router's*
    // behaviour (transparent read retry, typed no_backend 503s), which a
    // retrying client would mask.
    HttpClient::connect_with(addr, RetryPolicy::none()).expect("connect")
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The follower's replication high-water mark, read over its own wire.
fn replicated_seq(replica_addr: std::net::SocketAddr) -> Option<u64> {
    let mut client = connect(replica_addr);
    let reply = client.request("GET", "/v1/stats", "").expect("stats");
    match Response::parse_json(&reply.body).expect("parse stats") {
        Response::Stats(stats) => stats.replicated_seq,
        other => panic!("unexpected `{}` response to stats", other.op()),
    }
}

#[test]
fn cluster_replicates_survives_replica_kill_and_degrades_typed() {
    let dir = std::env::temp_dir().join(format!("tfsn-cluster-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Primary: WAL-attached, deployment loaded up front (mutations never
    // force a load, same as production).
    let primary_service = service(Some(&dir));
    primary_service.engine(None).expect("load primary");
    let primary = server(primary_service.clone());
    let primary_addr = primary.addr();

    // Two log-less followers polling the primary.
    let r1_service = service(None);
    let r2_service = service(None);
    let r1 = server(r1_service.clone());
    let r2 = server(r2_service.clone());
    let poll = |svc: &Arc<Service>| {
        replica::start(
            svc.clone(),
            FollowerOptions::new(primary_addr, Duration::from_millis(25)),
        )
    };
    let f1 = poll(&r1_service);
    let f2 = poll(&r2_service);

    // The router, probing fast so ejection shows up within the test.
    let specs = [
        format!("prim={primary_addr},role=primary"),
        format!("r1={},role=replica", r1.addr()),
        format!("r2={},role=replica", r2.addr()),
    ];
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let topology = Topology::parse(&spec_refs).unwrap();
    let router = Router::bind(
        &topology,
        "127.0.0.1:0",
        RouterOptions {
            probe_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut client = connect(router.addr());

    // 20 mutations through the router. The remove-then-insert pairs are
    // deterministic regardless of the seeded graph: whichever of the pair
    // is rejected, both are WAL-logged (append-before-apply), so the log
    // ends at sequence 20 either way.
    for i in 0..10u32 {
        let (u, v) = (i, i + 1);
        for body in [
            format!(r#"{{"op": "edge_remove", "u": {u}, "v": {v}}}"#),
            format!(r#"{{"op": "edge_insert", "u": {u}, "v": {v}, "sign": "-"}}"#),
        ] {
            let reply = client.request("POST", "/v1/mutate", &body).expect("mutate");
            assert!(
                reply.status == 200 || reply.status == 400,
                "mutation neither applied nor typed-rejected: {} {}",
                reply.status,
                reply.body
            );
        }
    }

    // The WAL pull surface, through the router (primary-routed).
    let reply = client
        .request("GET", "/v1/wal?from_seq=0&max=5", "")
        .expect("wal pull");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let end_seq = match Response::parse_json(&reply.body).expect("parse wal_records") {
        Response::WalRecords {
            deployment,
            from_seq,
            next_seq,
            end_seq,
            records,
        } => {
            assert_eq!(deployment, DEPLOYMENT);
            assert_eq!(from_seq, 0);
            assert_eq!(records.len(), 5, "max caps the reply");
            assert_eq!(next_seq, 5);
            end_seq
        }
        other => panic!("unexpected `{}` response", other.op()),
    };
    assert_eq!(
        end_seq, 20,
        "every mutation (applied or rejected) is logged"
    );

    // Both followers converge to the primary's high-water mark…
    wait_until("r1 to replicate", || {
        replicated_seq(r1.addr()) == Some(end_seq)
    });
    wait_until("r2 to replicate", || {
        replicated_seq(r2.addr()) == Some(end_seq)
    });
    // …and their graphs equal the primary's, and a fresh replay of the
    // primary's WAL against the same snapshot (the convergence contract).
    let primary_edges = primary_service.engine(None).unwrap().graph().edge_count();
    let scan = wal::scan(&dir.join(format!("{DEPLOYMENT}.wal"))).unwrap();
    assert!(scan.clean(), "no torn tail on a quiesced primary");
    assert_eq!(scan.mutations.len() as u64, end_seq);
    let fresh = service(None);
    let fresh_engine = fresh.engine(None).unwrap();
    for mutation in &scan.mutations {
        let _ = fresh_engine.mutate(mutation); // rejections re-fail identically
    }
    assert_eq!(fresh_engine.graph().edge_count(), primary_edges);
    for svc in [&r1_service, &r2_service] {
        assert_eq!(
            svc.engine(None).unwrap().graph().edge_count(),
            primary_edges
        );
    }
    // Non-followers never report a replication mark.
    assert_eq!(replicated_seq(primary_addr), None);

    // Reads round-robin across the replicas.
    for _ in 0..4 {
        let reply = client
            .request("POST", "/v1/query?timing=false", r#"{"task": [0, 1]}"#)
            .expect("query");
        assert_eq!(reply.status, 200, "{}", reply.body);
    }

    // Kill replica 2 outright. The router's pooled connection to it is now
    // dead and probes haven't noticed yet — the next reads routed its way
    // must transparently retry on replica 1: zero failed lines.
    f2.stop();
    r2.shutdown();
    for i in 0..8 {
        let reply = client
            .request("POST", "/v1/query?timing=false", r#"{"task": [1, 2]}"#)
            .unwrap_or_else(|e| panic!("read {i} lost to the dead replica: {e}"));
        assert_eq!(reply.status, 200, "read {i}: {}", reply.body);
    }

    // The probe ejects it shortly after; /v1/topology says so.
    wait_until("r2 ejection to show in /v1/topology", || {
        let reply = client.request("GET", "/v1/topology", "").expect("topology");
        reply.body.contains(r#""name":"r2","#)
            && reply.body.contains(r#""role":"replica","healthy":false"#)
    });

    // With only r1 healthy, a batch through the router is byte-identical
    // to the same batch served directly by r1's service. (First run fills
    // the caches on both paths; the compared runs are all cache hits.)
    let batch: String = (0..12)
        .map(|i| {
            format!(
                "{{\"id\": {i}, \"task\": [{}, {}]}}\n",
                i % 5,
                (i * 3 + 1) % 5
            )
        })
        .collect();
    let direct = |svc: &Arc<Service>| {
        let mut out = Vec::new();
        svc.stream_batch(
            None,
            std::io::Cursor::new(batch.clone()),
            &mut out,
            StreamOptions::timing(false),
        )
        .expect("direct batch");
        String::from_utf8(out).unwrap()
    };
    direct(&r1_service);
    let _ = client
        .request("POST", "/v1/batch?timing=false", &batch)
        .expect("warm batch");
    let via_router = client
        .request("POST", "/v1/batch?timing=false", &batch)
        .expect("batch");
    assert_eq!(via_router.status, 200);
    assert_eq!(
        via_router.body,
        direct(&r1_service),
        "router must not alter the batch stream"
    );

    // Primary down: writes degrade to the typed no_backend 503 (with
    // Retry-After) while reads keep flowing to the surviving replica.
    f1.stop();
    primary.shutdown();
    let reply = client
        .request(
            "POST",
            "/v1/mutate?deployment=net",
            r#"{"op": "edge_remove", "u": 0, "v": 1}"#,
        )
        .expect("mutate against dead primary");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert!(
        reply.body.contains(r#""code":"no_backend""#),
        "{}",
        reply.body
    );
    assert!(reply.body.contains(r#""role":"primary""#), "{}", reply.body);
    assert!(
        reply.body.contains(r#""deployment":"net""#),
        "{}",
        reply.body
    );
    assert!(
        reply.retry_after_secs().is_some(),
        "no_backend must advertise Retry-After"
    );
    let reply = client
        .request("POST", "/v1/query?timing=false", r#"{"task": [0]}"#)
        .expect("read with primary down");
    assert_eq!(reply.status, 200, "{}", reply.body);

    router.shutdown();
    r1.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI wiring of the follower loop (`serve-http --follow`), driven
/// through `cli::run` exactly as the binary would: the follower starts
/// against a primary whose deployment is still cold (every pull answers
/// the typed "warm or query it first" error), then the primary warms and
/// mutates, and the follower must log the error streak *and keep
/// polling* until it converges. Regression test: `run()` used to hold
/// `stderr.lock()` for the life of the process, so the follower thread's
/// first error `eprintln!` deadlocked on the stdio lock — silently, with
/// replication stuck at zero forever.
#[test]
fn cli_follower_survives_error_streak_and_converges() {
    let dir = std::env::temp_dir().join(format!("tfsn-cli-follow-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Primary: WAL-attached but deliberately NOT warmed yet.
    let primary_service = service(Some(&dir));
    let primary = server(primary_service.clone());
    let primary_addr = primary.addr();

    // An ephemeral port for the CLI follower: bind-and-release, then hand
    // the freed port to `serve-http --addr`.
    let follower_addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap()
    };

    let cli = std::thread::spawn(move || {
        tfsn_engine::cli::run(
            [
                "serve-http",
                "--addr",
                &follower_addr.to_string(),
                "--deployment",
                &format!("{DEPLOYMENT}={SPEC}"),
                "--follow",
                &primary_addr.to_string(),
                "--poll-ms",
                "25",
                "--allow-shutdown",
            ]
            .into_iter()
            .map(String::from),
        )
    });
    wait_until("CLI follower to come up", || {
        HttpClient::connect_with(follower_addr, RetryPolicy::none())
            .ok()
            .and_then(|mut c| c.request("GET", "/healthz", "").ok())
            .is_some_and(|reply| reply.status == 200)
    });

    // Let the follower take a few pulls against the cold primary — each
    // one answers the typed bad_request, exercising the error branch.
    std::thread::sleep(Duration::from_millis(150));

    // Warm the primary and push mutations straight at it.
    primary_service.engine(None).expect("load primary");
    let mut client = connect(primary_addr);
    for i in 0..3u32 {
        for body in [
            format!(r#"{{"op": "edge_remove", "u": {i}, "v": {}}}"#, i + 1),
            format!(
                r#"{{"op": "edge_insert", "u": {i}, "v": {}, "sign": "-"}}"#,
                i + 1
            ),
        ] {
            let reply = client.request("POST", "/v1/mutate", &body).expect("mutate");
            assert!(
                reply.status == 200 || reply.status == 400,
                "mutation neither applied nor typed-rejected: {} {}",
                reply.status,
                reply.body
            );
        }
    }

    // The follower recovers from the error streak and converges.
    wait_until("CLI follower to replicate", || {
        replicated_seq(follower_addr) == Some(6)
    });
    let primary_edges = primary_service.engine(None).unwrap().graph().edge_count();
    let mut follower_client = connect(follower_addr);
    let reply = follower_client
        .request("GET", "/v1/stats", "")
        .expect("follower stats");
    match Response::parse_json(&reply.body).expect("parse stats") {
        Response::Stats(stats) => assert_eq!(stats.dataset.edges, primary_edges),
        other => panic!("unexpected `{}` response to stats", other.op()),
    }

    // Graceful stop through the wire; the CLI run returns cleanly.
    let reply = follower_client
        .request("POST", "/v1/shutdown", "")
        .expect("shutdown");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(cli.join().expect("join cli thread"), 0);
    primary.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_refuses_shutdown_and_answers_health_locally() {
    // A router over a topology whose backends do not exist yet: the local
    // surface (healthz, topology, shutdown refusal) works regardless.
    let topology = Topology::parse(&["p=127.0.0.1:1,role=primary"]).unwrap();
    let router = Router::bind(
        &topology,
        "127.0.0.1:0",
        RouterOptions {
            probe_interval: Duration::from_secs(60), // stay out of the way
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = connect(router.addr());
    let reply = client.request("GET", "/healthz", "").unwrap();
    assert_eq!((reply.status, reply.body.as_str()), (200, "ok\n"));
    let reply = client.request("POST", "/v1/shutdown", "").unwrap();
    assert_eq!(reply.status, 403, "{}", reply.body);
    assert!(
        reply.body.contains("stop backends directly"),
        "{}",
        reply.body
    );
    let reply = client.request("GET", "/v1/topology", "").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains(r#""name":"p""#), "{}", reply.body);
    router.shutdown();
}

/// The replication storm: 500 mutations land on the primary, and a
/// rows-mode follower replays them through batched pull windows
/// (`max_per_pull` forces several `mutate_batch` groups). It must catch up
/// — `replicated_seq` reaches the storm size — while thrashing its row
/// cache strictly less than the unbatched baseline recorded in the same
/// test: the same log folded one record at a time with a read sweep
/// between records, which is what the pre-batching follower amounted to
/// under a live read workload.
#[test]
fn follower_storm_converges_with_fewer_row_builds_than_unbatched_replay() {
    use signed_graph::{EdgeMutation, NodeId, Sign};
    use tfsn_core::compat::CompatibilityKind;
    use tfsn_engine::{Engine, EngineOptions, StorePolicy};

    const STORM: usize = 500;
    const KIND: CompatibilityKind = CompatibilityKind::Spo;
    let rows_options = || EngineOptions {
        policy: StorePolicy::rows(None),
        build_threads: 2,
        ..Default::default()
    };
    // Fills every row of KIND, building the invalidated ones.
    let sweep = |engine: &Engine| {
        let fetched = engine.store().fetch(KIND);
        let scope = fetched.scope();
        for u in 0..engine.graph().node_count() {
            let _ = scope.compat().packed_row(NodeId::new(u));
        }
    };
    // A deterministic flappy storm: edges over a small node range get
    // removed, re-inserted and re-signed repeatedly, so batched windows
    // can cancel work that record-at-a-time replay pays for.
    let mutations: Vec<EdgeMutation> = (0..STORM)
        .map(|i| {
            let u = NodeId::new(i % 17);
            let v = NodeId::new((i * 7 + 1) % 23);
            let sign = if i % 3 == 0 {
                Sign::Negative
            } else {
                Sign::Positive
            };
            match i % 4 {
                0 => EdgeMutation::Insert { u, v, sign },
                1 => EdgeMutation::Remove { u, v },
                _ => EdgeMutation::SetSign { u, v, sign },
            }
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("tfsn-storm-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let primary_service = service(Some(&dir));
    let primary_engine = primary_service.engine(None).expect("load primary");
    let primary = server(primary_service.clone());
    for m in &mutations {
        let _ = primary_engine.mutate(m); // rejections are logged too
    }

    // The follower: rows resident up front, so the storm hits live state.
    let follower_service = {
        let registry = DeploymentRegistry::new(vec![DeploymentConfig::new(
            DEPLOYMENT,
            DeploymentSource::parse(SPEC).unwrap(),
        )
        .with_options(rows_options())])
        .unwrap();
        Arc::new(Service::new(registry))
    };
    let follower_engine = follower_service.engine(None).expect("load follower");
    sweep(&follower_engine);
    let follower = replica::start(
        follower_service.clone(),
        FollowerOptions {
            primary: primary.addr(),
            poll: Duration::from_millis(10),
            max_per_pull: 128, // several batched windows, not one giant pull
        },
    );
    wait_until("follower to replay the storm", || {
        follower_engine.replicated_seq() == Some(STORM as u64)
    });
    follower.stop();
    assert_eq!(
        format!("{:?}", follower_engine.graph().edges()),
        format!("{:?}", primary_engine.graph().edges()),
        "the converged follower must serve the primary's edge list"
    );
    sweep(&follower_engine);
    let follower_builds = follower_engine.store().row_build_count();

    // The unbatched baseline, recorded here: fold the identical log one
    // record at a time with a read sweep after every record.
    let baseline = Engine::with_options(
        DeploymentSource::parse(SPEC).unwrap().load(),
        rows_options(),
    );
    sweep(&baseline);
    for m in &mutations {
        let _ = baseline.mutate(m);
        sweep(&baseline);
    }
    let baseline_builds = baseline.store().row_build_count();
    assert!(
        follower_builds < baseline_builds,
        "batched windows must rebuild fewer rows than record-at-a-time \
         replay: follower {follower_builds} vs baseline {baseline_builds}"
    );

    primary.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
