//! Plain-text table rendering and JSON result persistence.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table (monospace output for the terminal and for
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(out, "{:<width$}", cell, width = width);
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimals, rendering `NaN` (used
/// for "not computed") as a dash.
pub fn fmt_float(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        "–".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

/// Formats a percentage with two decimals.
pub fn fmt_pct(v: f64) -> String {
    fmt_float(v, 2)
}

/// Serialises `value` as pretty JSON into `dir/name.json`, creating the
/// directory if needed. Returns the written path.
pub fn write_json<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "123456"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns aligned: "value" column starts at the same offset.
        let start0 = lines[0].find("value").unwrap();
        let start2 = lines[2].find('1').unwrap();
        assert_eq!(start0, start2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let rendered = t.render();
        assert!(rendered.contains("only-one"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(std::f64::consts::PI, 2), "3.14");
        assert_eq!(fmt_float(f64::NAN, 2), "–");
        assert_eq!(fmt_pct(99.555), "99.56");
    }

    #[test]
    fn json_round_trip() {
        #[derive(Serialize)]
        struct Dummy {
            x: u32,
        }
        let dir = std::env::temp_dir().join(format!("tfsn_report_test_{}", std::process::id()));
        let path = write_json(&dir, "dummy", &Dummy { x: 7 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x\": 7"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
