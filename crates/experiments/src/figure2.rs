//! Figure 2 — team-formation experiments.
//!
//! * **Panel (a)** — percentage of tasks (k = 5) for which each algorithm
//!   (LCMD, LCMC, RANDOM) finds a compatible team, per compatibility
//!   relation, together with the MAX upper bound (tasks whose skills are
//!   pairwise compatible).
//! * **Panel (b)** — average diameter (communication cost) of the teams each
//!   algorithm finds.
//! * **Panels (c) / (d)** — the same two metrics for LCMD while sweeping the
//!   task size k.
//! * **Policy ablation** (extension, `policy_ablation` bench) — all four
//!   skill × user policy combinations plus RANDOM, quantifying how much the
//!   skill-selection policy matters relative to the user-selection policy.

use serde::{Deserialize, Serialize};
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::skill_compat::SkillPairCompatibility;
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::solver::Solver;
use tfsn_core::team::TfsnInstance;
use tfsn_datasets::Dataset;
use tfsn_skills::task::Task;
use tfsn_skills::taskgen::random_coverable_tasks;

use crate::config::ExperimentConfig;
use crate::report::{fmt_float, fmt_pct, TextTable};

/// Aggregate outcome of one (relation, algorithm, task-size) workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeamFormationOutcome {
    /// Compatibility relation.
    pub kind: CompatibilityKind,
    /// Team-formation algorithm label ("LCMD", "LCMC", "RANDOM", …).
    pub algorithm: String,
    /// Task size k.
    pub task_size: usize,
    /// Number of tasks attempted.
    pub tasks: usize,
    /// Number of tasks for which a compatible team was found.
    pub solved: usize,
    /// Percentage of tasks solved (0–100).
    pub solved_pct: f64,
    /// Mean diameter of the found teams (NaN when none was found).
    pub mean_diameter: f64,
    /// Mean team size of the found teams (NaN when none was found).
    pub mean_team_size: f64,
}

/// The MAX upper bound of Figure 2(a): tasks whose skills are pairwise
/// compatible under the relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxBound {
    /// Compatibility relation.
    pub kind: CompatibilityKind,
    /// Percentage of tasks that are skill-compatible (0–100).
    pub skill_compatible_pct: f64,
}

/// The regenerated Figure 2 (all four panels) plus the policy ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Report {
    /// Dataset the experiment ran on (Epinions in the paper).
    pub dataset: String,
    /// Panel (a)/(b): per relation × algorithm outcomes at the default k.
    pub by_algorithm: Vec<TeamFormationOutcome>,
    /// Panel (a): the MAX upper bound per relation.
    pub max_bounds: Vec<MaxBound>,
    /// Panels (c)/(d): LCMD outcomes per relation × task size.
    pub by_task_size: Vec<TeamFormationOutcome>,
    /// Ablation: all policy combinations at the default k.
    pub policy_ablation: Vec<TeamFormationOutcome>,
}

impl Figure2Report {
    /// Looks up a panel (a)/(b) outcome.
    pub fn algorithm_outcome(
        &self,
        kind: CompatibilityKind,
        algorithm: &str,
    ) -> Option<&TeamFormationOutcome> {
        self.by_algorithm
            .iter()
            .find(|o| o.kind == kind && o.algorithm == algorithm)
    }

    /// Looks up a panel (c)/(d) outcome.
    pub fn task_size_outcome(
        &self,
        kind: CompatibilityKind,
        task_size: usize,
    ) -> Option<&TeamFormationOutcome> {
        self.by_task_size
            .iter()
            .find(|o| o.kind == kind && o.task_size == task_size)
    }

    /// Renders all panels as text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Dataset: {}\n\n", self.dataset));

        out.push_str("Figure 2(a) — % of tasks with a compatible team\n");
        let mut algorithms: Vec<String> = Vec::new();
        for o in &self.by_algorithm {
            if !algorithms.contains(&o.algorithm) {
                algorithms.push(o.algorithm.clone());
            }
        }
        let kinds = self.kinds(&self.by_algorithm);
        let mut header = vec!["relation".to_string()];
        header.extend(algorithms.iter().cloned());
        header.push("MAX".to_string());
        let mut ta = TextTable::new(header.clone());
        let mut tb = TextTable::new({
            let mut h = vec!["relation".to_string()];
            h.extend(algorithms.iter().cloned());
            h
        });
        for &kind in &kinds {
            let mut row_a = vec![kind.label().to_string()];
            let mut row_b = vec![kind.label().to_string()];
            for alg in &algorithms {
                match self.algorithm_outcome(kind, alg) {
                    Some(o) => {
                        row_a.push(fmt_pct(o.solved_pct));
                        row_b.push(fmt_float(o.mean_diameter, 2));
                    }
                    None => {
                        row_a.push("–".into());
                        row_b.push("–".into());
                    }
                }
            }
            let max = self
                .max_bounds
                .iter()
                .find(|m| m.kind == kind)
                .map(|m| fmt_pct(m.skill_compatible_pct))
                .unwrap_or_else(|| "–".into());
            row_a.push(max);
            ta.row(row_a);
            tb.row(row_b);
        }
        out.push_str(&ta.render());
        out.push_str("\nFigure 2(b) — average team diameter\n");
        out.push_str(&tb.render());

        out.push_str("\nFigure 2(c) — % solved vs task size (LCMD)\n");
        let sizes = self.task_sizes();
        let mut header = vec!["relation".to_string()];
        header.extend(sizes.iter().map(|s| format!("k={s}")));
        let mut tc = TextTable::new(header.clone());
        let mut td = TextTable::new(header);
        for &kind in &self.kinds(&self.by_task_size) {
            let mut row_c = vec![kind.label().to_string()];
            let mut row_d = vec![kind.label().to_string()];
            for &size in &sizes {
                match self.task_size_outcome(kind, size) {
                    Some(o) => {
                        row_c.push(fmt_pct(o.solved_pct));
                        row_d.push(fmt_float(o.mean_diameter, 2));
                    }
                    None => {
                        row_c.push("–".into());
                        row_d.push("–".into());
                    }
                }
            }
            tc.row(row_c);
            td.row(row_d);
        }
        out.push_str(&tc.render());
        out.push_str("\nFigure 2(d) — average diameter vs task size (LCMD)\n");
        out.push_str(&td.render());

        if !self.policy_ablation.is_empty() {
            out.push_str("\nPolicy ablation — % solved / diameter per policy combination\n");
            let mut t = TextTable::new(["relation", "algorithm", "% solved", "diameter"]);
            for o in &self.policy_ablation {
                t.row([
                    o.kind.label().to_string(),
                    o.algorithm.clone(),
                    fmt_pct(o.solved_pct),
                    fmt_float(o.mean_diameter, 2),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    fn kinds(&self, outcomes: &[TeamFormationOutcome]) -> Vec<CompatibilityKind> {
        let mut kinds = Vec::new();
        for o in outcomes {
            if !kinds.contains(&o.kind) {
                kinds.push(o.kind);
            }
        }
        kinds
    }

    fn task_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = Vec::new();
        for o in &self.by_task_size {
            if !sizes.contains(&o.task_size) {
                sizes.push(o.task_size);
            }
        }
        sizes.sort_unstable();
        sizes
    }
}

/// Runs one (relation, algorithm) workload over a list of tasks.
pub fn run_workload(
    dataset: &Dataset,
    comp: &CompatibilityMatrix,
    tasks: &[Task],
    algorithm: TeamAlgorithm,
    config: &ExperimentConfig,
) -> TeamFormationOutcome {
    use tfsn_core::compat::Compatibility;
    let instance = TfsnInstance::new(&dataset.graph, &dataset.skills);
    // Route through the Solver dispatch — the same entry point the
    // tfsn-engine serving layer uses — instead of calling solve_greedy
    // directly.
    let solver = Solver::Greedy {
        algorithm,
        config: config.greedy(),
    };
    let mut solved = 0usize;
    let mut diameter_sum = 0u64;
    let mut size_sum = 0u64;
    for task in tasks {
        if let Ok(team) = solver.solve(&instance, comp, task) {
            solved += 1;
            diameter_sum += u64::from(team.diameter(comp).unwrap_or(0));
            size_sum += team.len() as u64;
        }
    }
    let task_size = tasks.first().map(Task::len).unwrap_or(0);
    TeamFormationOutcome {
        kind: comp.kind(),
        algorithm: algorithm.label().to_string(),
        task_size,
        tasks: tasks.len(),
        solved,
        solved_pct: if tasks.is_empty() {
            0.0
        } else {
            100.0 * solved as f64 / tasks.len() as f64
        },
        mean_diameter: if solved == 0 {
            f64::NAN
        } else {
            diameter_sum as f64 / solved as f64
        },
        mean_team_size: if solved == 0 {
            f64::NAN
        } else {
            size_sum as f64 / solved as f64
        },
    }
}

/// Runs the full Figure 2 experiment on a given dataset.
pub fn run_on(dataset: &Dataset, config: &ExperimentConfig) -> Figure2Report {
    let engine = EngineConfig::default();
    let kinds = config.evaluated_kinds();

    // Build one matrix per relation (shared by all panels).
    let matrices: Vec<CompatibilityMatrix> = kinds
        .iter()
        .map(|&k| CompatibilityMatrix::build_parallel(&dataset.graph, k, &engine, config.threads))
        .collect();

    // Panel (a)/(b) workload: default task size.
    let default_tasks = random_coverable_tasks(
        &dataset.skills,
        config.default_task_size,
        config.tasks_per_size,
        config.seed ^ 0xF16_2AB,
    );

    let mut by_algorithm = Vec::new();
    let mut policy_ablation = Vec::new();
    let mut max_bounds = Vec::new();
    for comp in &matrices {
        for alg in TeamAlgorithm::FIGURE2 {
            by_algorithm.push(run_workload(dataset, comp, &default_tasks, alg, config));
        }
        for alg in TeamAlgorithm::ALL {
            policy_ablation.push(run_workload(dataset, comp, &default_tasks, alg, config));
        }
        let pairs = SkillPairCompatibility::from_rows(comp.rows(), &dataset.skills);
        let compatible_tasks = default_tasks
            .iter()
            .filter(|t| pairs.task_is_skill_compatible(t))
            .count();
        max_bounds.push(MaxBound {
            kind: {
                use tfsn_core::compat::Compatibility;
                comp.kind()
            },
            skill_compatible_pct: if default_tasks.is_empty() {
                0.0
            } else {
                100.0 * compatible_tasks as f64 / default_tasks.len() as f64
            },
        });
    }

    // Panels (c)/(d): task-size sweep with LCMD.
    let mut by_task_size = Vec::new();
    for &size in &config.task_sizes {
        let tasks = random_coverable_tasks(
            &dataset.skills,
            size,
            config.tasks_per_size,
            config.seed ^ (0xC0FFEE + size as u64),
        );
        for comp in &matrices {
            by_task_size.push(run_workload(
                dataset,
                comp,
                &tasks,
                TeamAlgorithm::LCMD,
                config,
            ));
        }
    }

    Figure2Report {
        dataset: dataset.name.clone(),
        by_algorithm,
        max_bounds,
        by_task_size,
        policy_ablation,
    }
}

/// Runs Figure 2 on the Epinions emulation (as in the paper).
pub fn run(config: &ExperimentConfig) -> Figure2Report {
    let dataset = tfsn_datasets::epinions(config.epinions_scale);
    run_on(&dataset, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let cfg = ExperimentConfig::quick();
        let report = run(&cfg);
        let kinds = cfg.evaluated_kinds().len();
        assert_eq!(
            report.by_algorithm.len(),
            kinds * TeamAlgorithm::FIGURE2.len()
        );
        assert_eq!(
            report.policy_ablation.len(),
            kinds * TeamAlgorithm::ALL.len()
        );
        assert_eq!(report.max_bounds.len(), kinds);
        assert_eq!(report.by_task_size.len(), kinds * cfg.task_sizes.len());
        for o in report.by_algorithm.iter().chain(&report.by_task_size) {
            assert!(o.solved <= o.tasks);
            assert!(o.solved_pct >= 0.0 && o.solved_pct <= 100.0);
            if o.solved > 0 {
                assert!(o.mean_diameter >= 0.0);
                assert!(o.mean_team_size >= 1.0);
            }
        }
        // The MAX bound is monotone in the relation relaxation: every task
        // whose skills are pairwise SPA-compatible is also pairwise
        // NNE-compatible (a guaranteed consequence of the containment
        // lattice, unlike the greedy solve rates which are heuristic).
        let spa_max = report
            .max_bounds
            .iter()
            .find(|m| m.kind == CompatibilityKind::Spa)
            .unwrap()
            .skill_compatible_pct;
        let nne_max = report
            .max_bounds
            .iter()
            .find(|m| m.kind == CompatibilityKind::Nne)
            .unwrap()
            .skill_compatible_pct;
        assert!(
            spa_max <= nne_max + 1e-9,
            "SPA MAX {spa_max}% > NNE MAX {nne_max}%"
        );
        let rendered = report.render();
        assert!(rendered.contains("Figure 2(a)"));
        assert!(rendered.contains("Figure 2(d)"));
        assert!(rendered.contains("Policy ablation"));
    }
}
