//! Engine-serving experiment: the team-formation workload of Figure 2
//! expressed as a query batch and served through `tfsn-engine`, instead of
//! looping over raw solver calls.
//!
//! This is the "online" view of the paper's evaluation: one deployment per
//! dataset, matrices built once into the engine cache, then the whole task
//! workload answered as a parallel batch. The report records both phases —
//! the one-time warm-up (matrix builds) and the steady-state serving rate —
//! which is exactly the split a production deployment cares about.

use serde::{Deserialize, Serialize};
use tfsn_core::compat::{estimated_matrix_bytes, CompatibilityKind};
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::Solver;
use tfsn_datasets::{synthetic, Dataset, DatasetSpec};
use tfsn_engine::{BatchOptions, Deployment, Engine, EngineOptions, StorePolicy, TeamQuery};
use tfsn_skills::taskgen::random_coverable_tasks;

use crate::config::ExperimentConfig;
use crate::report::{fmt_float, TextTable};

/// Serving metrics for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Users in the deployment.
    pub users: usize,
    /// Queries served.
    pub queries: usize,
    /// Queries answered with a team.
    pub solved: usize,
    /// Compatibility matrices built (one per relation in the workload).
    pub matrix_builds: usize,
    /// Seconds spent building matrices (the cold phase).
    pub warmup_seconds: f64,
    /// Wall-clock seconds for the warm batch.
    pub batch_seconds: f64,
    /// Warm throughput, queries per second.
    pub queries_per_second: f64,
    /// Mean in-engine latency per query, microseconds.
    pub mean_latency_micros: f64,
}

/// The engine-serving report across datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// One row per dataset.
    pub rows: Vec<ServingRow>,
}

impl ServingReport {
    /// Renders the report as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "dataset",
            "users",
            "queries",
            "solved",
            "builds",
            "warmup s",
            "batch s",
            "q/s",
            "µs/query",
        ]);
        for r in &self.rows {
            t.row([
                r.dataset.clone(),
                r.users.to_string(),
                r.queries.to_string(),
                r.solved.to_string(),
                r.matrix_builds.to_string(),
                fmt_float(r.warmup_seconds, 2),
                fmt_float(r.batch_seconds, 3),
                fmt_float(r.queries_per_second, 0),
                fmt_float(r.mean_latency_micros, 0),
            ]);
        }
        t.render()
    }
}

/// Builds the Figure-2 style workload for a dataset: `tasks_per_size` tasks
/// of the default size, round-robined over the evaluated relations and the
/// Figure 2 algorithms.
pub fn workload(dataset: &Dataset, config: &ExperimentConfig) -> Vec<TeamQuery> {
    let kinds = config.evaluated_kinds();
    let tasks = random_coverable_tasks(
        &dataset.skills,
        config.default_task_size,
        config.tasks_per_size,
        config.seed ^ 0xF16_2AB,
    );
    let mut queries = Vec::new();
    let mut id = 0u64;
    for task in &tasks {
        for &kind in &kinds {
            for alg in TeamAlgorithm::FIGURE2 {
                queries.push(TeamQuery {
                    id: Some(id),
                    task: task.skills().iter().map(|s| s.index()).collect(),
                    kind,
                    solver: Solver::Greedy {
                        algorithm: alg,
                        config: config.greedy(),
                    },
                    objective: None,
                });
                id += 1;
            }
        }
    }
    queries
}

/// Serves one dataset's workload through a fresh engine.
pub fn run_on(dataset: Dataset, config: &ExperimentConfig) -> ServingRow {
    let name = dataset.name.clone();
    let users = dataset.graph.node_count();
    let queries = workload(&dataset, config);
    let engine = Engine::with_options(
        Deployment::from_dataset(dataset),
        EngineOptions {
            build_threads: config.threads,
            ..Default::default()
        },
    );

    let kinds: Vec<CompatibilityKind> = config.evaluated_kinds();
    let warm_start = std::time::Instant::now();
    engine.warm(&kinds);
    let warmup_seconds = warm_start.elapsed().as_secs_f64();

    let batch_start = std::time::Instant::now();
    let answers = engine.batch(&queries, &BatchOptions::default());
    let batch_seconds = batch_start.elapsed().as_secs_f64();

    let metrics = engine.metrics();
    ServingRow {
        dataset: name,
        users,
        queries: answers.len(),
        solved: answers
            .iter()
            .filter(|a| a.status == tfsn_engine::AnswerStatus::Ok)
            .count(),
        matrix_builds: engine.store().build_count(),
        warmup_seconds,
        batch_seconds,
        queries_per_second: answers.len() as f64 / batch_seconds.max(1e-9),
        mean_latency_micros: metrics.mean_latency_micros(),
    }
}

/// Runs the serving experiment on all three dataset emulations.
pub fn run(config: &ExperimentConfig) -> ServingReport {
    let rows = vec![
        run_on(tfsn_datasets::slashdot(), config),
        run_on(tfsn_datasets::epinions(config.epinions_scale), config),
        run_on(tfsn_datasets::wikipedia(config.wikipedia_scale), config),
    ];
    ServingReport { rows }
}

/// Metrics of the budget-serving scenario: a synthetic graph whose full
/// `O(|V|²)` compatibility matrix exceeds the memory budget, served in
/// row mode with LRU eviction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetedServingRow {
    /// Dataset name.
    pub dataset: String,
    /// Users in the deployment.
    pub users: usize,
    /// The per-kind resident-byte budget the engine ran under.
    pub memory_budget_bytes: usize,
    /// What the full matrix would have needed — must exceed the budget for
    /// the scenario to be meaningful.
    pub estimated_matrix_bytes: usize,
    /// Queries served.
    pub queries: usize,
    /// Queries answered with a team.
    pub solved: usize,
    /// Per-source rows computed on demand (recomputations included).
    pub row_builds: u64,
    /// Rows evicted to stay inside the budget.
    pub row_evictions: u64,
    /// Resident relation bytes after the batch (≤ budget per kind).
    pub resident_bytes: u64,
    /// Wall-clock seconds for the batch (cold: rows fill on demand).
    pub batch_seconds: f64,
    /// Throughput, queries per second.
    pub queries_per_second: f64,
}

/// The budget-serving report (one JSON artefact, `serving_budgeted`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetedServingReport {
    /// One row per (dataset, budget) scenario.
    pub rows: Vec<BudgetedServingRow>,
}

impl BudgetedServingReport {
    /// Renders the report as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "dataset",
            "users",
            "budget B",
            "matrix B",
            "queries",
            "solved",
            "row builds",
            "evictions",
            "resident B",
            "batch s",
            "q/s",
        ]);
        for r in &self.rows {
            t.row([
                r.dataset.clone(),
                r.users.to_string(),
                r.memory_budget_bytes.to_string(),
                r.estimated_matrix_bytes.to_string(),
                r.queries.to_string(),
                r.solved.to_string(),
                r.row_builds.to_string(),
                r.row_evictions.to_string(),
                r.resident_bytes.to_string(),
                fmt_float(r.batch_seconds, 3),
                fmt_float(r.queries_per_second, 0),
            ]);
        }
        t.render()
    }
}

/// The synthetic deployment of the budget-serving scenario.
fn budget_scenario_dataset(config: &ExperimentConfig) -> Dataset {
    let users = config.serving_scenario_users;
    let spec = DatasetSpec {
        name: format!("budget-synthetic-{users}n"),
        users,
        edges: users.saturating_mul(5),
        negative_fraction: 0.2,
        diameter: 0,
        skills: 400,
        skills_per_user: 3.0,
        zipf_exponent: 1.0,
        locality: 0.8,
        preferential: 0.3,
        balance_bias: 0.8,
        camps: 4,
        seed: config.seed ^ 0xB0D6E7,
    };
    synthetic::generate(&spec, 1.0)
}

/// Serves the budget scenario: row-mode under a budget the full matrix
/// cannot fit, SPO + NNE workload, cold (rows fill on demand).
pub fn run_budgeted(config: &ExperimentConfig) -> BudgetedServingReport {
    let dataset = budget_scenario_dataset(config);
    let name = dataset.name.clone();
    let users = dataset.graph.node_count();
    let matrix_bytes = estimated_matrix_bytes(users);
    assert!(
        matrix_bytes > config.serving_budget_bytes,
        "scenario misconfigured: the full matrix fits the budget"
    );

    let tasks = random_coverable_tasks(
        &dataset.skills,
        config.default_task_size.min(3),
        config.tasks_per_size.min(12),
        config.seed ^ 0x5E21,
    );
    let mut queries = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        queries.push(TeamQuery {
            id: Some(i as u64),
            task: task.skills().iter().map(|s| s.index()).collect(),
            kind: [CompatibilityKind::Spo, CompatibilityKind::Nne][i % 2],
            solver: Solver::Greedy {
                algorithm: TeamAlgorithm::LCMD,
                config: config.greedy(),
            },
            objective: None,
        });
    }

    let engine = Engine::with_options(
        Deployment::from_dataset(dataset),
        EngineOptions {
            build_threads: config.threads,
            policy: StorePolicy::auto(config.serving_budget_bytes),
            ..Default::default()
        },
    );
    let batch_start = std::time::Instant::now();
    let answers = engine.batch(&queries, &BatchOptions::default());
    let batch_seconds = batch_start.elapsed().as_secs_f64();
    let metrics = engine.metrics();

    BudgetedServingReport {
        rows: vec![BudgetedServingRow {
            dataset: name,
            users,
            memory_budget_bytes: config.serving_budget_bytes,
            estimated_matrix_bytes: matrix_bytes,
            queries: answers.len(),
            solved: answers
                .iter()
                .filter(|a| a.status == tfsn_engine::AnswerStatus::Ok)
                .count(),
            row_builds: metrics.row_builds,
            row_evictions: metrics.row_evictions,
            resident_bytes: metrics.resident_bytes,
            batch_seconds,
            queries_per_second: answers.len() as f64 / batch_seconds.max(1e-9),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_slashdot_answers_the_whole_workload() {
        let cfg = ExperimentConfig::quick();
        let row = run_on(tfsn_datasets::slashdot(), &cfg);
        let expected =
            cfg.tasks_per_size * cfg.evaluated_kinds().len() * TeamAlgorithm::FIGURE2.len();
        assert_eq!(row.dataset, "Slashdot");
        assert_eq!(row.queries, expected);
        assert!(row.solved <= row.queries);
        // One matrix per evaluated relation, no duplicates.
        assert_eq!(row.matrix_builds, cfg.evaluated_kinds().len());
        assert!(row.queries_per_second > 0.0);
        let report = ServingReport { rows: vec![row] };
        assert!(report.render().contains("Slashdot"));
    }

    #[test]
    fn budget_scenario_forces_row_mode_with_evictions() {
        let mut cfg = ExperimentConfig::quick();
        // Keep the test fast but under real eviction pressure: ~1k users,
        // a budget of roughly four rows.
        cfg.serving_scenario_users = 1_000;
        cfg.serving_budget_bytes = 40_000;
        let report = run_budgeted(&cfg);
        let row = &report.rows[0];
        assert_eq!(row.users, 1_000);
        assert!(row.estimated_matrix_bytes > row.memory_budget_bytes);
        assert!(row.queries > 0);
        assert!(row.row_builds > 0, "row mode must compute rows on demand");
        assert!(
            row.row_evictions > 0,
            "a four-row budget must evict: {row:?}"
        );
        assert!(row.resident_bytes <= 2 * row.memory_budget_bytes as u64);
        assert!(report.render().contains("budget-synthetic"));
    }
}
