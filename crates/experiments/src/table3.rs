//! Table 3 — comparison with unsigned team formation.
//!
//! The paper derives two unsigned networks from the signed Epinions graph —
//! one ignoring signs, one deleting the negative edges — and runs the classic
//! RarestFirst team-formation algorithm on them with the same 50 random
//! tasks of 5 skills. The table reports the percentage of the returned teams
//! that satisfy each signed compatibility relation; the punchline is that
//! most of them do not, motivating compatibility-aware team formation.
//!
//! Note on SBP: on the Epinions-scale graph the exact SBP relation is not
//! computable (as in the paper, which could compute it only on Slashdot);
//! this harness uses the SBPH heuristic for that column, which is a subset
//! of SBP, so the reported compatibility percentage is a lower bound.

use serde::{Deserialize, Serialize};
use signed_graph::transform::UnsignedTransform;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::team::baseline::unsigned_baseline_compatibility;
use tfsn_datasets::Dataset;
use tfsn_skills::task::Task;
use tfsn_skills::taskgen::random_coverable_tasks;

use crate::config::ExperimentConfig;
use crate::report::{fmt_pct, TextTable};

/// One cell of Table 3: a transform × relation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Entry {
    /// Which unsigned transform was applied ("Ignore sign" / "Delete negative").
    pub transform: String,
    /// The signed compatibility relation the returned teams were checked
    /// against.
    pub kind: CompatibilityKind,
    /// Percentage of returned teams that are compatible under the relation.
    pub compatible_teams_pct: f64,
    /// Number of tasks for which the unsigned baseline returned a team.
    pub teams_returned: usize,
}

/// The regenerated Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Report {
    /// Dataset the experiment ran on (Epinions in the paper).
    pub dataset: String,
    /// Task size (5 in the paper).
    pub task_size: usize,
    /// Number of tasks (50 in the paper).
    pub task_count: usize,
    /// All transform × relation entries.
    pub entries: Vec<Table3Entry>,
}

impl Table3Report {
    /// The entry for a transform and relation, if present.
    pub fn entry(
        &self,
        transform: UnsignedTransform,
        kind: CompatibilityKind,
    ) -> Option<&Table3Entry> {
        self.entries
            .iter()
            .find(|e| e.transform == transform.label() && e.kind == kind)
    }

    /// Renders the report in the paper's layout (one row per transform, one
    /// column per relation).
    pub fn render(&self) -> String {
        let kinds = [
            CompatibilityKind::Spa,
            CompatibilityKind::Spm,
            CompatibilityKind::Spo,
            CompatibilityKind::Sbph,
            CompatibilityKind::Nne,
        ];
        let mut header = vec!["baseline".to_string()];
        header.extend(kinds.iter().map(|k| k.label().to_string()));
        let mut t = TextTable::new(header);
        for transform in [
            UnsignedTransform::IgnoreSigns,
            UnsignedTransform::DeleteNegative,
        ] {
            let mut row = vec![transform.label().to_string()];
            for kind in kinds {
                row.push(match self.entry(transform, kind) {
                    Some(e) => fmt_pct(e.compatible_teams_pct),
                    None => "–".to_string(),
                });
            }
            t.row(row);
        }
        format!(
            "Dataset: {} — {} tasks of {} skills\n{}",
            self.dataset,
            self.task_count,
            self.task_size,
            t.render()
        )
    }
}

/// Runs the Table 3 experiment on a given dataset.
pub fn run_on(dataset: &Dataset, config: &ExperimentConfig) -> Table3Report {
    let tasks: Vec<Task> = random_coverable_tasks(
        &dataset.skills,
        config.default_task_size,
        config.tasks_per_size,
        config.seed ^ 0x7AB1_E003,
    );
    let engine = EngineConfig::default();
    let kinds = config.evaluated_kinds();
    let mut entries = Vec::new();
    for kind in kinds {
        let comp =
            CompatibilityMatrix::build_parallel(&dataset.graph, kind, &engine, config.threads);
        for transform in [
            UnsignedTransform::IgnoreSigns,
            UnsignedTransform::DeleteNegative,
        ] {
            let outcome = unsigned_baseline_compatibility(
                &dataset.graph,
                &dataset.skills,
                &tasks,
                transform,
                &comp,
            );
            entries.push(Table3Entry {
                transform: transform.label().to_string(),
                kind,
                compatible_teams_pct: outcome.compatible_percentage(),
                teams_returned: outcome.teams_returned,
            });
        }
    }
    Table3Report {
        dataset: dataset.name.clone(),
        task_size: config.default_task_size,
        task_count: tasks.len(),
        entries,
    }
}

/// Runs the Table 3 experiment on the Epinions emulation (as in the paper).
pub fn run(config: &ExperimentConfig) -> Table3Report {
    let dataset = tfsn_datasets::epinions(config.epinions_scale);
    run_on(&dataset, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let report = run(&ExperimentConfig::quick());
        assert_eq!(report.dataset, "Epinions");
        // 5 relations × 2 transforms.
        assert_eq!(report.entries.len(), 10);
        for e in &report.entries {
            assert!(e.compatible_teams_pct >= 0.0 && e.compatible_teams_pct <= 100.0);
            assert!(e.teams_returned <= report.task_count);
        }
        // The paper's qualitative claim: stricter relations admit at most as
        // many compatible baseline teams as more relaxed ones.
        let spa = report
            .entry(UnsignedTransform::IgnoreSigns, CompatibilityKind::Spa)
            .unwrap()
            .compatible_teams_pct;
        let nne = report
            .entry(UnsignedTransform::IgnoreSigns, CompatibilityKind::Nne)
            .unwrap()
            .compatible_teams_pct;
        assert!(spa <= nne + 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("Ignore sign"));
        assert!(rendered.contains("Delete negative"));
    }
}
