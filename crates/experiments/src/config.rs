//! Configuration shared by all experiments.

use serde::{Deserialize, Serialize};
use tfsn_core::compat::CompatibilityKind;

/// Knobs controlling dataset scale and workload size for the whole harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scale factor for the Epinions emulation (1.0 = 28,854 users as in the
    /// paper). The default keeps the full experiment suite in the minutes
    /// range on a laptop.
    pub epinions_scale: f64,
    /// Scale factor for the Wikipedia emulation (1.0 = 7,066 users).
    pub wikipedia_scale: f64,
    /// Number of random tasks generated per task size (the paper uses 50).
    pub tasks_per_size: usize,
    /// Task size used by Table 3 and Figure 2(a)/(b) (the paper uses 5).
    pub default_task_size: usize,
    /// Task sizes swept by Figure 2(c)/(d) (the paper sweeps up to 20).
    pub task_sizes: Vec<usize>,
    /// Worker threads for building compatibility matrices.
    pub threads: usize,
    /// Whether to also run the exact SBP relation on Slashdot (Table 2's
    /// SBP column and the SBP-vs-SBPH comparison).
    pub sbp_exact_on_slashdot: bool,
    /// Cap on greedy seeds per task (the paper seeds from every holder of the
    /// first skill; a cap bounds the runtime on popular skills — `None`
    /// reproduces the paper exactly).
    pub max_seeds: Option<usize>,
    /// Holder cap for the least-compatible-skill degree computation.
    pub skill_degree_cap: Option<usize>,
    /// Base seed for task generation and the RANDOM policy.
    pub seed: u64,
    /// Users in the synthetic graph of the budget-serving scenario. Sized
    /// so the full `O(|V|²)` matrix does **not** fit
    /// `serving_budget_bytes`, forcing row-mode serving.
    pub serving_scenario_users: usize,
    /// Per-kind resident-byte budget for the budget-serving scenario.
    pub serving_budget_bytes: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            epinions_scale: 0.10,
            wikipedia_scale: 0.25,
            tasks_per_size: 50,
            default_task_size: 5,
            task_sizes: vec![2, 5, 10, 15, 20],
            threads: default_threads(),
            sbp_exact_on_slashdot: true,
            max_seeds: Some(40),
            skill_degree_cap: Some(64),
            seed: 0xEDB7_2020,
            serving_scenario_users: 20_000,
            serving_budget_bytes: 8 << 20,
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for CI smoke tests and debug builds:
    /// tiny dataset scales and a handful of tasks.
    pub fn quick() -> Self {
        ExperimentConfig {
            epinions_scale: 0.015,
            wikipedia_scale: 0.04,
            tasks_per_size: 8,
            default_task_size: 4,
            task_sizes: vec![2, 4, 6],
            threads: 2,
            sbp_exact_on_slashdot: true,
            max_seeds: Some(10),
            skill_degree_cap: Some(32),
            seed: 0xEDB7_2020,
            serving_scenario_users: 2_500,
            serving_budget_bytes: 512 << 10,
        }
    }

    /// The compatibility relations evaluated by Table 2, Table 3 and
    /// Figure 2 (the paper omits DPE as degenerate and exact SBP where it is
    /// not computable).
    pub fn evaluated_kinds(&self) -> Vec<CompatibilityKind> {
        CompatibilityKind::EVALUATED.to_vec()
    }

    /// The greedy-solver configuration derived from this experiment config.
    pub fn greedy(&self) -> tfsn_core::team::greedy::GreedyConfig {
        tfsn_core::team::greedy::GreedyConfig {
            max_seeds: self.max_seeds,
            skill_degree_cap: self.skill_degree_cap,
            random_seed: self.seed ^ 0xA1B2,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let cfg = ExperimentConfig::default();
        assert!(cfg.epinions_scale > 0.0 && cfg.epinions_scale <= 1.0);
        assert_eq!(cfg.tasks_per_size, 50);
        assert_eq!(cfg.default_task_size, 5);
        assert!(cfg.task_sizes.contains(&20));
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.evaluated_kinds().len(), 5);
        let greedy = cfg.greedy();
        assert_eq!(greedy.max_seeds, cfg.max_seeds);
    }

    #[test]
    fn quick_config_is_smaller() {
        let quick = ExperimentConfig::quick();
        let full = ExperimentConfig::default();
        assert!(quick.epinions_scale < full.epinions_scale);
        assert!(quick.tasks_per_size < full.tasks_per_size);
        assert!(quick.task_sizes.len() <= full.task_sizes.len());
    }
}
