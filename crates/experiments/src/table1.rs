//! Table 1 — dataset statistics.
//!
//! Regenerates the "users / edges / negative edges / diameter / skills" row
//! for every dataset emulation at the configured scales.

use serde::{Deserialize, Serialize};
use tfsn_datasets::{Dataset, DatasetStats};

use crate::config::ExperimentConfig;
use crate::report::{fmt_pct, TextTable};

/// The regenerated Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    /// One row per dataset, in the paper's order.
    pub rows: Vec<DatasetStats>,
}

impl Table1Report {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "dataset",
            "#users",
            "#edges",
            "#neg edges",
            "%neg",
            "diameter",
            "#skills",
        ]);
        for row in &self.rows {
            t.row([
                row.name.clone(),
                row.users.to_string(),
                row.edges.to_string(),
                row.negative_edges.to_string(),
                fmt_pct(row.negative_percentage),
                format!(
                    "{}{}",
                    row.diameter,
                    if row.diameter_exact { "" } else { "~" }
                ),
                row.skills.to_string(),
            ]);
        }
        t.render()
    }
}

/// Loads the three dataset emulations at the configured scales.
pub fn datasets(config: &ExperimentConfig) -> Vec<Dataset> {
    vec![
        tfsn_datasets::slashdot(),
        tfsn_datasets::epinions(config.epinions_scale),
        tfsn_datasets::wikipedia(config.wikipedia_scale),
    ]
}

/// Runs the Table 1 experiment.
pub fn run(config: &ExperimentConfig) -> Table1Report {
    let rows = datasets(config).iter().map(DatasetStats::compute).collect();
    Table1Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_rows() {
        let report = run(&ExperimentConfig::quick());
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].name, "Slashdot");
        assert_eq!(report.rows[1].name, "Epinions");
        assert_eq!(report.rows[2].name, "Wikipedia");
        // Slashdot is always generated at full size.
        assert_eq!(report.rows[0].users, 214);
        let rendered = report.render();
        assert!(rendered.contains("Slashdot"));
        assert!(rendered.contains("diameter"));
    }
}
