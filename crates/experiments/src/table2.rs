//! Table 2 — comparison of the compatibility relations.
//!
//! For every dataset and relation the paper reports (a) the percentage of
//! compatible user pairs, (b) the percentage of compatible skill pairs and
//! (c) the average distance between compatible users. The exact SBP relation
//! is computed only on Slashdot (as in the paper), alongside the SBP-vs-SBPH
//! agreement figure quoted in the text (~2.5 % difference).

use serde::{Deserialize, Serialize};
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::skill_compat::SkillPairCompatibility;
use tfsn_datasets::Dataset;

use crate::config::ExperimentConfig;
use crate::report::{fmt_float, fmt_pct, TextTable};
use crate::table1::datasets;

/// One cell group of Table 2: a dataset × relation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Entry {
    /// Dataset name.
    pub dataset: String,
    /// Compatibility relation.
    pub kind: CompatibilityKind,
    /// Percentage of compatible user pairs (0–100).
    pub compatible_users_pct: f64,
    /// Percentage of compatible skill pairs (0–100).
    pub compatible_skills_pct: f64,
    /// Average relation distance between compatible users.
    pub avg_distance: f64,
}

/// The regenerated Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Report {
    /// All dataset × relation entries.
    pub entries: Vec<Table2Entry>,
    /// Fraction (0–100) of node pairs on which exact SBP and heuristic SBPH
    /// disagree on Slashdot (the paper reports ≈ 2.5 %). `None` when the
    /// exact relation was not computed.
    pub sbp_sbph_disagreement_pct: Option<f64>,
}

impl Table2Report {
    /// The entry for a given dataset and relation, if present.
    pub fn entry(&self, dataset: &str, kind: CompatibilityKind) -> Option<&Table2Entry> {
        self.entries
            .iter()
            .find(|e| e.dataset == dataset && e.kind == kind)
    }

    /// Renders the report as an aligned text table (one row per dataset and
    /// metric, one column per relation — the paper's layout).
    pub fn render(&self) -> String {
        let kinds: Vec<CompatibilityKind> = {
            let mut k = vec![
                CompatibilityKind::Spa,
                CompatibilityKind::Spm,
                CompatibilityKind::Spo,
                CompatibilityKind::Sbph,
            ];
            if self
                .entries
                .iter()
                .any(|e| e.kind == CompatibilityKind::Sbp)
            {
                k.push(CompatibilityKind::Sbp);
            }
            k.push(CompatibilityKind::Nne);
            k
        };
        let mut header = vec!["dataset".to_string(), "metric".to_string()];
        header.extend(kinds.iter().map(|k| k.label().to_string()));
        let mut t = TextTable::new(header);
        let datasets: Vec<String> = {
            let mut names = Vec::new();
            for e in &self.entries {
                if !names.contains(&e.dataset) {
                    names.push(e.dataset.clone());
                }
            }
            names
        };
        for dataset in &datasets {
            for (metric, f) in [
                ("comp. users %", 0usize),
                ("comp. skills %", 1),
                ("avg distance", 2),
            ] {
                let mut row = vec![dataset.clone(), metric.to_string()];
                for &kind in &kinds {
                    let cell = match self.entry(dataset, kind) {
                        Some(e) => match f {
                            0 => fmt_pct(e.compatible_users_pct),
                            1 => fmt_pct(e.compatible_skills_pct),
                            _ => fmt_float(e.avg_distance, 2),
                        },
                        None => "–".to_string(),
                    };
                    row.push(cell);
                }
                t.row(row);
            }
        }
        let mut out = t.render();
        if let Some(diff) = self.sbp_sbph_disagreement_pct {
            out.push_str(&format!(
                "\nSBP vs SBPH disagreement on Slashdot: {:.2}% of node pairs\n",
                diff
            ));
        }
        out
    }
}

/// Computes the Table 2 entries for one dataset.
pub fn analyze_dataset(
    dataset: &Dataset,
    kinds: &[CompatibilityKind],
    engine: &EngineConfig,
    threads: usize,
) -> Vec<Table2Entry> {
    kinds
        .iter()
        .map(|&kind| {
            let matrix = CompatibilityMatrix::build_parallel(&dataset.graph, kind, engine, threads);
            entry_from_matrix(dataset, kind, &matrix)
        })
        .collect()
}

fn entry_from_matrix(
    dataset: &Dataset,
    kind: CompatibilityKind,
    matrix: &CompatibilityMatrix,
) -> Table2Entry {
    let pairs = SkillPairCompatibility::from_rows(matrix.rows(), &dataset.skills);
    Table2Entry {
        dataset: dataset.name.clone(),
        kind,
        compatible_users_pct: 100.0 * matrix.compatible_pair_fraction(),
        compatible_skills_pct: 100.0 * pairs.compatible_pair_fraction(&dataset.skills),
        avg_distance: matrix.mean_compatible_distance().unwrap_or(f64::NAN),
    }
}

/// Runs the Table 2 experiment over all three dataset emulations.
pub fn run(config: &ExperimentConfig) -> Table2Report {
    let engine = EngineConfig::default();
    let kinds = config.evaluated_kinds();
    let mut entries = Vec::new();
    let mut disagreement = None;

    for dataset in datasets(config) {
        entries.extend(analyze_dataset(&dataset, &kinds, &engine, config.threads));
        // Exact SBP (and the SBP-vs-SBPH comparison) on Slashdot only.
        if dataset.name == "Slashdot" && config.sbp_exact_on_slashdot {
            let sbp = CompatibilityMatrix::build_parallel(
                &dataset.graph,
                CompatibilityKind::Sbp,
                &engine,
                config.threads,
            );
            entries.push(entry_from_matrix(&dataset, CompatibilityKind::Sbp, &sbp));
            let sbph = CompatibilityMatrix::build_parallel(
                &dataset.graph,
                CompatibilityKind::Sbph,
                &engine,
                config.threads,
            );
            disagreement = Some(disagreement_pct(&sbp, &sbph));
        }
    }

    Table2Report {
        entries,
        sbp_sbph_disagreement_pct: disagreement,
    }
}

/// Percentage of distinct node pairs on which the two relations disagree.
pub fn disagreement_pct(a: &CompatibilityMatrix, b: &CompatibilityMatrix) -> f64 {
    use tfsn_core::compat::Compatibility;
    let n = a.node_count().min(b.node_count());
    if n < 2 {
        return 0.0;
    }
    let mut disagreements = 0u64;
    let mut total = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            let (u, v) = (signed_graph::NodeId::new(u), signed_graph::NodeId::new(v));
            total += 1;
            if a.compatible(u, v) != b.compatible(u, v) {
                disagreements += 1;
            }
        }
    }
    100.0 * disagreements as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let mut cfg = ExperimentConfig::quick();
        cfg.threads = 2;
        let report = run(&cfg);
        // 3 datasets × 5 evaluated kinds + the Slashdot SBP row.
        assert_eq!(report.entries.len(), 3 * 5 + 1);
        assert!(report.sbp_sbph_disagreement_pct.is_some());
        let slashdot_spa = report.entry("Slashdot", CompatibilityKind::Spa).unwrap();
        let slashdot_nne = report.entry("Slashdot", CompatibilityKind::Nne).unwrap();
        // Relaxing the relation can only increase the compatible fraction.
        assert!(slashdot_spa.compatible_users_pct <= slashdot_nne.compatible_users_pct + 1e-9);
        assert!(slashdot_spa.compatible_users_pct >= 0.0);
        assert!(slashdot_nne.compatible_users_pct <= 100.0);
        let rendered = report.render();
        assert!(rendered.contains("SPA"));
        assert!(rendered.contains("comp. users %"));
        assert!(rendered.contains("SBP vs SBPH"));
    }

    #[test]
    fn disagreement_of_identical_matrices_is_zero() {
        let d = tfsn_datasets::slashdot();
        let engine = EngineConfig::default();
        let m = CompatibilityMatrix::build_parallel(&d.graph, CompatibilityKind::Spo, &engine, 2);
        assert_eq!(disagreement_pct(&m, &m), 0.0);
    }
}
