//! # tfsn-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section (§5):
//!
//! | Module / binary | Paper artefact |
//! |-----------------|----------------|
//! | [`table1`] / `cargo run -p tfsn-experiments --bin table1` | Table 1 — dataset statistics |
//! | [`table2`] / `--bin table2` | Table 2 — comparison of compatibility relations (incl. SBP vs SBPH on Slashdot) |
//! | [`table3`] / `--bin table3` | Table 3 — comparison with unsigned team formation |
//! | [`figure2`] / `--bin figure2` | Figure 2(a)–(d) — team-formation algorithms and task-size sweeps, plus the policy ablation |
//! | `--bin run-all` | everything above, writing JSON result files |
//!
//! Absolute numbers differ from the paper because the datasets are synthetic
//! emulations matched to the published statistics (see `DESIGN.md`); the
//! qualitative shape — which relation admits more compatible pairs, which
//! algorithm wins, how solutions decay with task size — is what the harness
//! reproduces and what `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod figure2;
pub mod report;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;

pub use config::ExperimentConfig;
