//! Runs the whole experiment suite (Tables 1–3, Figure 2, and the
//! engine-serving phase) and writes one JSON file per artefact — the inputs
//! recorded in `EXPERIMENTS.md`.
//!
//! The team-formation workloads are executed through the `tfsn-engine`
//! serving layer (matrices cached per relation, queries fanned out in
//! parallel), not by looping over raw solver calls.
//!
//! Usage: `cargo run --release -p tfsn-experiments --bin run-all [-- --quick] [--out DIR]`

use std::time::Instant;

use tfsn_experiments::{figure2, report, serving, table1, table2, table3, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));

    let started = Instant::now();

    let t1 = table1::run(&config);
    println!("Table 1: Dataset Statistics\n{}", t1.render());
    write(&out_dir, "table1", &t1);

    let t2 = table2::run(&config);
    println!(
        "Table 2: Comparison of compatibility relations\n{}",
        t2.render()
    );
    write(&out_dir, "table2", &t2);

    let t3 = table3::run(&config);
    println!("Table 3: Unsigned team-formation baseline\n{}", t3.render());
    write(&out_dir, "table3", &t3);

    let f2 = figure2::run(&config);
    println!("Figure 2: Team formation\n{}", f2.render());
    write(&out_dir, "figure2", &f2);

    let serving = serving::run(&config);
    println!(
        "Engine serving: warm-cache batch throughput\n{}",
        serving.render()
    );
    write(&out_dir, "serving", &serving);

    let budgeted = serving::run_budgeted(&config);
    println!(
        "Engine serving under memory budget: row-mode with LRU eviction\n{}",
        budgeted.render()
    );
    write(&out_dir, "serving_budgeted", &budgeted);

    write(&out_dir, "config", &config);
    eprintln!(
        "[run-all] finished in {:.1}s; results in {}",
        started.elapsed().as_secs_f64(),
        out_dir.display()
    );
}

fn write<T: serde::Serialize>(dir: &std::path::Path, name: &str, value: &T) {
    match report::write_json(dir, name, value) {
        Ok(path) => eprintln!("[run-all] wrote {}", path.display()),
        Err(e) => eprintln!("[run-all] could not write {name}: {e}"),
    }
}
