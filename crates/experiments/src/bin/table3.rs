//! Regenerates Table 3 (comparison with unsigned team formation).
//!
//! Usage: `cargo run --release -p tfsn-experiments --bin table3 [-- --quick] [--out DIR]`

use tfsn_experiments::{report, table3, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));

    eprintln!(
        "[table3] running unsigned baselines on the Epinions emulation (scale {})…",
        config.epinions_scale
    );
    let result = table3::run(&config);
    println!("Table 3: Percentage of unsigned-baseline teams that are compatible");
    println!("{}", result.render());

    match report::write_json(&out_dir, "table3", &result) {
        Ok(path) => eprintln!("[table3] wrote {}", path.display()),
        Err(e) => eprintln!("[table3] could not write results: {e}"),
    }
}
