//! Regenerates Figure 2 (team-formation experiments, all four panels) and
//! the policy ablation.
//!
//! Usage: `cargo run --release -p tfsn-experiments --bin figure2 [-- --quick] [--out DIR]`

use tfsn_experiments::{figure2, report, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));

    eprintln!(
        "[figure2] running team formation on the Epinions emulation (scale {}, {} tasks/size)…",
        config.epinions_scale, config.tasks_per_size
    );
    let result = figure2::run(&config);
    println!("Figure 2: Team formation");
    println!("{}", result.render());

    match report::write_json(&out_dir, "figure2", &result) {
        Ok(path) => eprintln!("[figure2] wrote {}", path.display()),
        Err(e) => eprintln!("[figure2] could not write results: {e}"),
    }
}
