//! Regenerates Table 2 (comparison of compatibility relations).
//!
//! Usage: `cargo run --release -p tfsn-experiments --bin table2 [-- --quick] [--no-sbp] [--out DIR]`

use tfsn_experiments::{report, table2, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    if args.iter().any(|a| a == "--no-sbp") {
        config.sbp_exact_on_slashdot = false;
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));

    eprintln!(
        "[table2] building compatibility relations (epinions scale {}, wikipedia scale {})…",
        config.epinions_scale, config.wikipedia_scale
    );
    let result = table2::run(&config);
    println!("Table 2: Comparison of compatibility relations");
    println!("{}", result.render());

    match report::write_json(&out_dir, "table2", &result) {
        Ok(path) => eprintln!("[table2] wrote {}", path.display()),
        Err(e) => eprintln!("[table2] could not write results: {e}"),
    }
}
