//! Regenerates Table 1 (dataset statistics).
//!
//! Usage: `cargo run --release -p tfsn-experiments --bin table1 [-- --quick] [--out DIR]`

use tfsn_experiments::{report, table1, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let out_dir = out_dir(&args);

    eprintln!("[table1] generating dataset emulations…");
    let result = table1::run(&config);
    println!("Table 1: Dataset Statistics");
    println!("{}", result.render());

    match report::write_json(&out_dir, "table1", &result) {
        Ok(path) => eprintln!("[table1] wrote {}", path.display()),
        Err(e) => eprintln!("[table1] could not write results: {e}"),
    }
}

fn out_dir(args: &[String]) -> std::path::PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}
