//! A compact bitset of skills.

use serde::{Deserialize, Serialize};

use crate::universe::SkillId;

/// A fixed-capacity set of skills stored as a bitset.
///
/// All skill sets in one problem instance share the same capacity (the size
/// of the [`crate::SkillUniverse`]); operations between sets of different
/// capacities are supported by treating missing high bits as unset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SkillSet {
    bits: Vec<u64>,
    capacity: usize,
}

impl SkillSet {
    /// Creates an empty set able to hold skills `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        SkillSet {
            bits: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set from an iterator of skills, sized to `capacity`.
    pub fn from_iter_with_capacity<I: IntoIterator<Item = SkillId>>(
        capacity: usize,
        iter: I,
    ) -> Self {
        let mut s = Self::new(capacity);
        for id in iter {
            s.insert(id);
        }
        s
    }

    /// The capacity (size of the universe) this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a skill. Ignores ids beyond the capacity.
    pub fn insert(&mut self, id: SkillId) {
        let i = id.index();
        if i < self.capacity {
            self.bits[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Removes a skill if present.
    pub fn remove(&mut self, id: SkillId) {
        let i = id.index();
        if i < self.capacity {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// `true` if the set contains `id`.
    pub fn contains(&self, id: SkillId) -> bool {
        let i = id.index();
        i < self.capacity && (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of skills in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no skills.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Adds every skill of `other` to `self`.
    pub fn union_with(&mut self, other: &SkillSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Removes every skill not present in `other`.
    pub fn intersect_with(&mut self, other: &SkillSet) {
        for (i, a) in self.bits.iter_mut().enumerate() {
            *a &= other.bits.get(i).copied().unwrap_or(0);
        }
    }

    /// Removes every skill present in `other`.
    pub fn difference_with(&mut self, other: &SkillSet) {
        for (i, a) in self.bits.iter_mut().enumerate() {
            *a &= !other.bits.get(i).copied().unwrap_or(0);
        }
    }

    /// Number of skills present in both sets.
    pub fn intersection_len(&self, other: &SkillSet) -> usize {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` if every skill of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &SkillSet) -> bool {
        self.bits
            .iter()
            .enumerate()
            .all(|(i, a)| a & !other.bits.get(i).copied().unwrap_or(0) == 0)
    }

    /// `true` if the two sets share at least one skill.
    pub fn intersects(&self, other: &SkillSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Iterator over the skills in the set, in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = SkillId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(SkillId::new(w * 64 + bit))
                }
            })
        })
    }

    /// Collects the contents into a vector of ids.
    pub fn to_vec(&self) -> Vec<SkillId> {
        self.iter().collect()
    }
}

impl FromIterator<SkillId> for SkillSet {
    /// Builds a set sized to the largest id seen (capacity = max id + 1).
    fn from_iter<I: IntoIterator<Item = SkillId>>(iter: I) -> Self {
        let ids: Vec<SkillId> = iter.into_iter().collect();
        let capacity = ids.iter().map(|s| s.index() + 1).max().unwrap_or(0);
        Self::from_iter_with_capacity(capacity, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(capacity: usize, ids: &[usize]) -> SkillSet {
        SkillSet::from_iter_with_capacity(capacity, ids.iter().map(|&i| SkillId::new(i)))
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SkillSet::new(130);
        assert!(s.is_empty());
        s.insert(SkillId::new(0));
        s.insert(SkillId::new(64));
        s.insert(SkillId::new(129));
        s.insert(SkillId::new(500)); // beyond capacity: ignored
        assert_eq!(s.len(), 3);
        assert!(s.contains(SkillId::new(64)));
        assert!(!s.contains(SkillId::new(63)));
        assert!(!s.contains(SkillId::new(500)));
        s.remove(SkillId::new(64));
        assert!(!s.contains(SkillId::new(64)));
        assert_eq!(s.len(), 2);
        s.remove(SkillId::new(999)); // no-op
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn set_algebra() {
        let a = set(100, &[1, 2, 3, 70]);
        let b = set(100, &[2, 3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), set(100, &[1, 2, 3, 4, 70]).to_vec());
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), set(100, &[2, 3]).to_vec());
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), set(100, &[1, 70]).to_vec());
        assert_eq!(a.intersection_len(&b), 2);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        assert!(a.intersects(&b));
        assert!(!set(100, &[9]).intersects(&b));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = set(200, &[150, 3, 64, 65, 0]);
        let ids: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(ids, vec![0, 3, 64, 65, 150]);
    }

    #[test]
    fn from_iterator_auto_capacity() {
        let s: SkillSet = [SkillId::new(5), SkillId::new(2)].into_iter().collect();
        assert_eq!(s.capacity(), 6);
        assert_eq!(s.len(), 2);
        let empty: SkillSet = std::iter::empty().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn mixed_capacity_operations_are_safe() {
        let mut a = set(100, &[1, 80]);
        let b = set(10, &[1, 2]);
        a.intersect_with(&b);
        assert_eq!(a.to_vec(), vec![SkillId::new(1)]);
        let mut c = set(10, &[3]);
        c.union_with(&set(100, &[3, 90])); // high bits of other are ignored
        assert_eq!(c.len(), 1);
        assert!(set(10, &[3]).is_subset_of(&set(100, &[3, 90])));
    }
}
