//! Per-user skill assignments and the inverted skill → users index.

use serde::{Deserialize, Serialize};

use crate::skillset::SkillSet;
use crate::universe::SkillId;

/// The skill function `skill : V → 2^S` of a problem instance plus its
/// inverted index.
///
/// Users are referenced by their dense node index (the same index as the
/// `signed-graph` node ids), keeping this crate independent of the graph
/// crate while allowing zero-cost joins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkillAssignment {
    skill_count: usize,
    per_user: Vec<SkillSet>,
    /// `users_with[s]` = sorted list of user indices possessing skill `s`.
    users_with: Vec<Vec<u32>>,
}

impl SkillAssignment {
    /// Creates an empty assignment for `user_count` users over a universe of
    /// `skill_count` skills.
    pub fn new(skill_count: usize, user_count: usize) -> Self {
        SkillAssignment {
            skill_count,
            per_user: vec![SkillSet::new(skill_count); user_count],
            users_with: vec![Vec::new(); skill_count],
        }
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.per_user.len()
    }

    /// Number of skills in the universe.
    pub fn skill_count(&self) -> usize {
        self.skill_count
    }

    /// Grants skill `skill` to user `user`. Ignores out-of-range ids.
    /// Granting the same skill twice is a no-op.
    pub fn grant(&mut self, user: usize, skill: SkillId) {
        if user >= self.per_user.len() || skill.index() >= self.skill_count {
            return;
        }
        if !self.per_user[user].contains(skill) {
            self.per_user[user].insert(skill);
            let list = &mut self.users_with[skill.index()];
            match list.binary_search(&(user as u32)) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, user as u32),
            }
        }
    }

    /// The skill set of `user`.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn skills_of(&self, user: usize) -> &SkillSet {
        &self.per_user[user]
    }

    /// `true` if `user` possesses `skill`.
    pub fn has_skill(&self, user: usize, skill: SkillId) -> bool {
        user < self.per_user.len() && self.per_user[user].contains(skill)
    }

    /// The users possessing `skill`, in ascending order.
    pub fn users_with_skill(&self, skill: SkillId) -> &[u32] {
        static EMPTY: Vec<u32> = Vec::new();
        self.users_with.get(skill.index()).unwrap_or(&EMPTY)
    }

    /// Number of users possessing `skill` (its *support* / frequency).
    pub fn skill_frequency(&self, skill: SkillId) -> usize {
        self.users_with_skill(skill).len()
    }

    /// Iterator over `(skill, frequency)` for every skill in the universe.
    pub fn skill_frequencies(&self) -> impl Iterator<Item = (SkillId, usize)> + '_ {
        self.users_with
            .iter()
            .enumerate()
            .map(|(i, users)| (SkillId::new(i), users.len()))
    }

    /// Average number of skills per user.
    pub fn mean_skills_per_user(&self) -> f64 {
        if self.per_user.is_empty() {
            return 0.0;
        }
        let total: usize = self.per_user.iter().map(SkillSet::len).sum();
        total as f64 / self.per_user.len() as f64
    }

    /// Number of skills that at least one user possesses.
    pub fn covered_skill_count(&self) -> usize {
        self.users_with.iter().filter(|u| !u.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SkillId {
        SkillId::new(i)
    }

    #[test]
    fn grant_and_query() {
        let mut a = SkillAssignment::new(4, 3);
        a.grant(0, s(0));
        a.grant(0, s(2));
        a.grant(1, s(2));
        a.grant(1, s(2)); // duplicate grant is a no-op
        a.grant(9, s(0)); // out-of-range user ignored
        a.grant(0, s(9)); // out-of-range skill ignored
        assert_eq!(a.user_count(), 3);
        assert_eq!(a.skill_count(), 4);
        assert!(a.has_skill(0, s(0)));
        assert!(a.has_skill(1, s(2)));
        assert!(!a.has_skill(2, s(0)));
        assert!(!a.has_skill(9, s(0)));
        assert_eq!(a.skills_of(0).len(), 2);
        assert_eq!(a.users_with_skill(s(2)), &[0, 1]);
        assert_eq!(a.users_with_skill(s(3)), &[] as &[u32]);
        assert_eq!(a.users_with_skill(s(9)), &[] as &[u32]);
        assert_eq!(a.skill_frequency(s(2)), 2);
        assert_eq!(a.covered_skill_count(), 2);
        assert!((a.mean_skills_per_user() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn users_with_skill_stays_sorted() {
        let mut a = SkillAssignment::new(1, 5);
        for user in [4, 1, 3, 0, 2] {
            a.grant(user, s(0));
        }
        assert_eq!(a.users_with_skill(s(0)), &[0, 1, 2, 3, 4]);
        assert_eq!(a.skill_frequencies().next(), Some((s(0), 5)));
    }

    #[test]
    fn empty_assignment() {
        let a = SkillAssignment::new(0, 0);
        assert_eq!(a.mean_skills_per_user(), 0.0);
        assert_eq!(a.covered_skill_count(), 0);
        assert_eq!(a.user_count(), 0);
    }
}
