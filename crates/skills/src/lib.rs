//! # tfsn-skills
//!
//! The skills-and-tasks substrate of the *Forming Compatible Teams in Signed
//! Networks* reproduction.
//!
//! The paper's input, besides the signed graph, is a universe `S` of skills,
//! a function `skill(u) ⊆ S` mapping every individual to the skills they
//! possess, and a *task* `T ⊆ S` of required skills. This crate provides:
//!
//! * [`SkillId`] / [`SkillUniverse`] — interned skill identifiers with
//!   optional human-readable names.
//! * [`SkillSet`] — a compact bitset of skills supporting the coverage
//!   operations the greedy team-formation algorithm needs.
//! * [`assignment::SkillAssignment`] — per-user skill sets plus the inverted
//!   skill → users index used for candidate enumeration and skill rarity.
//! * [`zipf::ZipfSampler`] — the Zipf-distributed skill frequencies the paper
//!   uses to synthesise skills for the Wikipedia dataset.
//! * [`task::Task`] and [`taskgen`] — task construction and the random task
//!   workloads of the evaluation (50 random tasks of `k` skills).
//!
//! # Example
//!
//! ```
//! use tfsn_skills::{SkillUniverse, SkillSet, task::Task};
//! use tfsn_skills::assignment::SkillAssignment;
//!
//! let mut universe = SkillUniverse::new();
//! let rust = universe.intern("rust");
//! let sql = universe.intern("sql");
//! let _ml = universe.intern("ml");
//!
//! let mut assignment = SkillAssignment::new(universe.len(), 3);
//! assignment.grant(0, rust);
//! assignment.grant(1, sql);
//!
//! let task = Task::new(vec![rust, sql]);
//! let mut covered = SkillSet::new(universe.len());
//! covered.union_with(assignment.skills_of(0));
//! covered.union_with(assignment.skills_of(1));
//! assert!(task.is_covered_by(&covered));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod skillset;
pub mod task;
pub mod taskgen;
pub mod universe;
pub mod zipf;

pub use skillset::SkillSet;
pub use universe::{SkillId, SkillUniverse};
