//! Tasks: the sets of skills a team must cover.

use serde::{Deserialize, Serialize};

use crate::skillset::SkillSet;
use crate::universe::SkillId;

/// A task `T ⊆ S`: the set of skills required for its completion.
///
/// The skills are stored in ascending id order with duplicates removed, so a
/// task's size is well defined and iteration is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    skills: Vec<SkillId>,
}

impl Task {
    /// Creates a task from the given skills (deduplicated and sorted).
    pub fn new<I: IntoIterator<Item = SkillId>>(skills: I) -> Self {
        let mut skills: Vec<SkillId> = skills.into_iter().collect();
        skills.sort_unstable();
        skills.dedup();
        Task { skills }
    }

    /// The required skills in ascending order.
    pub fn skills(&self) -> &[SkillId] {
        &self.skills
    }

    /// Number of distinct required skills (the task size `k`).
    pub fn len(&self) -> usize {
        self.skills.len()
    }

    /// `true` if the task requires no skills (trivially satisfied).
    pub fn is_empty(&self) -> bool {
        self.skills.is_empty()
    }

    /// `true` if the task requires `skill`.
    pub fn requires(&self, skill: SkillId) -> bool {
        self.skills.binary_search(&skill).is_ok()
    }

    /// Converts the task into a [`SkillSet`] with the given capacity.
    pub fn to_skillset(&self, capacity: usize) -> SkillSet {
        SkillSet::from_iter_with_capacity(capacity, self.skills.iter().copied())
    }

    /// `true` if every required skill is contained in `covered`.
    pub fn is_covered_by(&self, covered: &SkillSet) -> bool {
        self.skills.iter().all(|&s| covered.contains(s))
    }

    /// The required skills not yet present in `covered`.
    pub fn uncovered(&self, covered: &SkillSet) -> Vec<SkillId> {
        self.skills
            .iter()
            .copied()
            .filter(|&s| !covered.contains(s))
            .collect()
    }
}

impl FromIterator<SkillId> for Task {
    fn from_iter<I: IntoIterator<Item = SkillId>>(iter: I) -> Self {
        Task::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SkillId {
        SkillId::new(i)
    }

    #[test]
    fn construction_dedups_and_sorts() {
        let t = Task::new(vec![s(5), s(1), s(5), s(3)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.skills(), &[s(1), s(3), s(5)]);
        assert!(t.requires(s(3)));
        assert!(!t.requires(s(2)));
        assert!(!t.is_empty());
        assert!(Task::new(vec![]).is_empty());
    }

    #[test]
    fn coverage_checks() {
        let t = Task::new(vec![s(0), s(2), s(4)]);
        let mut covered = SkillSet::new(8);
        assert!(!t.is_covered_by(&covered));
        assert_eq!(t.uncovered(&covered), vec![s(0), s(2), s(4)]);
        covered.insert(s(0));
        covered.insert(s(4));
        assert_eq!(t.uncovered(&covered), vec![s(2)]);
        covered.insert(s(2));
        assert!(t.is_covered_by(&covered));
        assert!(t.uncovered(&covered).is_empty());
        // Empty task is always covered.
        assert!(Task::new(vec![]).is_covered_by(&SkillSet::new(0)));
    }

    #[test]
    fn skillset_conversion() {
        let t: Task = [s(1), s(6)].into_iter().collect();
        let set = t.to_skillset(10);
        assert_eq!(set.len(), 2);
        assert!(set.contains(s(6)));
        assert!(!set.contains(s(0)));
    }
}
