//! Random generation of skill assignments and task workloads.
//!
//! Two generators mirror the paper's setup:
//!
//! * [`assign_skills_zipf`] — "We generated `k` distinct skills with
//!   frequencies following a Zipf distribution … each skill is assigned to
//!   users in the network uniformly at random" (used for Wikipedia, and by
//!   the Slashdot/Epinions emulators to mimic category skew).
//! * [`random_tasks`] — "For a given task of size `k`, we generated 50 tasks
//!   by randomly selecting `k` skills" (the team-formation workload).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::assignment::SkillAssignment;
use crate::task::Task;
use crate::universe::SkillId;
use crate::zipf::ZipfSampler;

/// Configuration for the Zipf skill-assignment generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfAssignmentConfig {
    /// Number of users (graph nodes).
    pub users: usize,
    /// Number of distinct skills in the universe.
    pub skills: usize,
    /// Total number of (user, skill) grants to draw, i.e. the sum of skill
    /// frequencies. The paper does not publish this figure; emulators pick a
    /// multiple of the user count so that every user has a few skills.
    pub total_grants: usize,
    /// Zipf exponent for the skill-frequency distribution.
    pub exponent: f64,
    /// Guarantee that every user receives at least this many skills (drawn
    /// from the same Zipf law), so no user is skill-less.
    pub min_skills_per_user: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfAssignmentConfig {
    fn default() -> Self {
        ZipfAssignmentConfig {
            users: 1000,
            skills: 500,
            total_grants: 3000,
            exponent: 1.0,
            min_skills_per_user: 1,
            seed: 42,
        }
    }
}

/// Draws a skill assignment with Zipf-distributed skill frequencies: each
/// grant picks a skill from the Zipf law and a user uniformly at random.
pub fn assign_skills_zipf(cfg: &ZipfAssignmentConfig) -> SkillAssignment {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut assignment = SkillAssignment::new(cfg.skills, cfg.users);
    if cfg.users == 0 || cfg.skills == 0 {
        return assignment;
    }
    let zipf = ZipfSampler::new(cfg.skills, cfg.exponent);
    // Guaranteed minimum per user first.
    for user in 0..cfg.users {
        for _ in 0..cfg.min_skills_per_user {
            assignment.grant(user, zipf.sample_skill(&mut rng));
        }
    }
    // Remaining grants uniformly over users.
    let already = cfg.users * cfg.min_skills_per_user;
    for _ in already..cfg.total_grants.max(already) {
        let user = rng.gen_range(0..cfg.users);
        assignment.grant(user, zipf.sample_skill(&mut rng));
    }
    assignment
}

/// Generates `count` random tasks of exactly `size` distinct skills chosen
/// uniformly from `universe_size` skills. Deterministic for a fixed seed.
pub fn random_tasks(universe_size: usize, size: usize, count: usize, seed: u64) -> Vec<Task> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks = Vec::with_capacity(count);
    let size = size.min(universe_size);
    let mut all: Vec<SkillId> = (0..universe_size).map(SkillId::new).collect();
    for _ in 0..count {
        all.shuffle(&mut rng);
        tasks.push(Task::new(all[..size].iter().copied()));
    }
    tasks
}

/// Generates `count` random tasks of `size` skills, restricted to skills that
/// at least one user possesses (so the task is coverable ignoring
/// compatibility). Falls back to the full universe when fewer than `size`
/// skills are covered.
pub fn random_coverable_tasks(
    assignment: &SkillAssignment,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<Task> {
    let covered: Vec<SkillId> = assignment
        .skill_frequencies()
        .filter(|(_, f)| *f > 0)
        .map(|(s, _)| s)
        .collect();
    if covered.len() < size {
        return random_tasks(assignment.skill_count(), size, count, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = covered;
    let mut tasks = Vec::with_capacity(count);
    for _ in 0..count {
        pool.shuffle(&mut rng);
        tasks.push(Task::new(pool[..size].iter().copied()));
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_assignment_covers_users_and_skews_skills() {
        let cfg = ZipfAssignmentConfig {
            users: 200,
            skills: 50,
            total_grants: 800,
            min_skills_per_user: 1,
            seed: 3,
            ..Default::default()
        };
        let a = assign_skills_zipf(&cfg);
        assert_eq!(a.user_count(), 200);
        // Every user got at least one skill.
        for u in 0..200 {
            assert!(!a.skills_of(u).is_empty(), "user {u} has no skills");
        }
        // The most frequent skill should dominate the median one.
        let mut freqs: Vec<usize> = a.skill_frequencies().map(|(_, f)| f).collect();
        freqs.sort_unstable_by(|x, y| y.cmp(x));
        assert!(freqs[0] > freqs[25]);
        // Total grants is at least the configured amount minus duplicates.
        assert!(a.mean_skills_per_user() >= 1.0);
    }

    #[test]
    fn zipf_assignment_is_deterministic() {
        let cfg = ZipfAssignmentConfig {
            users: 50,
            skills: 20,
            total_grants: 150,
            seed: 11,
            ..Default::default()
        };
        let a = assign_skills_zipf(&cfg);
        let b = assign_skills_zipf(&cfg);
        for u in 0..50 {
            assert_eq!(a.skills_of(u), b.skills_of(u));
        }
    }

    #[test]
    fn empty_configs_do_not_panic() {
        let a = assign_skills_zipf(&ZipfAssignmentConfig {
            users: 0,
            skills: 0,
            total_grants: 10,
            ..Default::default()
        });
        assert_eq!(a.user_count(), 0);
    }

    #[test]
    fn random_tasks_have_requested_size_and_are_deterministic() {
        let t1 = random_tasks(100, 5, 50, 9);
        let t2 = random_tasks(100, 5, 50, 9);
        assert_eq!(t1.len(), 50);
        assert_eq!(t1, t2);
        for t in &t1 {
            assert_eq!(t.len(), 5);
            assert!(t.skills().iter().all(|s| s.index() < 100));
        }
        // Size capped at universe size.
        let t = random_tasks(3, 10, 2, 1);
        assert!(t.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn coverable_tasks_only_use_supported_skills() {
        let mut a = SkillAssignment::new(20, 10);
        for s in 0..8 {
            a.grant(s % 10, SkillId::new(s));
        }
        let tasks = random_coverable_tasks(&a, 3, 20, 5);
        for t in &tasks {
            for s in t.skills() {
                assert!(a.skill_frequency(*s) > 0, "skill {s} unsupported");
            }
        }
        // Falls back gracefully when not enough covered skills.
        let tasks = random_coverable_tasks(&a, 15, 3, 5);
        assert!(tasks.iter().all(|t| t.len() == 15));
    }
}
