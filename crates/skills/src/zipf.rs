//! Zipf-distributed sampling of skill frequencies.
//!
//! The paper synthesises skills for the Wikipedia dataset as: *"We generated
//! 500 distinct skills with frequencies following a Zipf distribution as in
//! real data. Each skill is assigned to users in the network uniformly at
//! random."* This module implements that sampler without any external
//! distribution crate: the CDF of the (finite) Zipf distribution is
//! precomputed and sampled by binary search.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::universe::SkillId;

/// A sampler over ranks `1..=n` with probability proportional to
/// `1 / rank^exponent` (classic Zipf).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with the given exponent (`s ≈ 1.0`
    /// is the classic Zipf law).
    ///
    /// # Panics
    /// Panics if `n == 0` or `exponent` is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(exponent.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler has a single rank (never empty by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent the sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass of a 0-based rank.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Samples a 0-based rank (0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Samples a skill id (rank interpreted as the skill index).
    pub fn sample_skill<R: Rng + ?Sized>(&self, rng: &mut R) -> SkillId {
        SkillId::new(self.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decay() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
        assert_eq!(z.probability(1000), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.0);
    }

    #[test]
    fn sampling_respects_rank_ordering() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head rank must dominate the tail substantially.
        assert!(counts[0] > counts[10] * 2);
        assert!(counts[0] > counts[49] * 5);
        // Every sampled index is in range (implicit via indexing) and the
        // head carries roughly its theoretical share (1/H_50 ≈ 0.222).
        let head_share = counts[0] as f64 / 20_000.0;
        assert!((head_share - z.probability(0)).abs() < 0.03);
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
            assert_eq!(z.sample_skill(&mut rng), SkillId::new(0));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
