//! Skill identifiers and the interning universe.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier of a skill in a [`SkillUniverse`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SkillId(u32);

impl SkillId {
    /// Creates a skill id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        SkillId(index as u32)
    }

    /// The raw index of this skill.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SkillId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for SkillId {
    fn from(v: usize) -> Self {
        SkillId::new(v)
    }
}

/// The universe `S` of skills: an interning table from skill names to dense
/// [`SkillId`]s.
///
/// Dataset loaders intern category names ("databases", "politics", …); purely
/// synthetic datasets can use [`SkillUniverse::with_anonymous`] to create `k`
/// unnamed skills.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SkillUniverse {
    names: Vec<String>,
    index: HashMap<String, SkillId>,
}

impl SkillUniverse {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a universe with `count` anonymous skills named `skill_0`,
    /// `skill_1`, ….
    pub fn with_anonymous(count: usize) -> Self {
        let mut u = Self::new();
        for i in 0..count {
            u.intern(&format!("skill_{i}"));
        }
        u
    }

    /// Number of distinct skills.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no skill has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning the existing id if it was seen before.
    pub fn intern(&mut self, name: &str) -> SkillId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SkillId::new(self.names.len());
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up a skill by name without interning.
    pub fn get(&self, name: &str) -> Option<SkillId> {
        self.index.get(name).copied()
    }

    /// The name of skill `id`, if it exists.
    pub fn name(&self, id: SkillId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Iterator over all skill ids.
    pub fn ids(&self) -> impl Iterator<Item = SkillId> + '_ {
        (0..self.names.len()).map(SkillId::new)
    }

    /// Iterator over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SkillId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SkillId::new(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut u = SkillUniverse::new();
        let a = u.intern("databases");
        let b = u.intern("databases");
        let c = u.intern("graphics");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(u.len(), 2);
        assert_eq!(u.get("databases"), Some(a));
        assert_eq!(u.get("nope"), None);
        assert_eq!(u.name(a), Some("databases"));
        assert_eq!(u.name(SkillId::new(99)), None);
    }

    #[test]
    fn anonymous_universe() {
        let u = SkillUniverse::with_anonymous(5);
        assert_eq!(u.len(), 5);
        assert!(!u.is_empty());
        assert_eq!(u.name(SkillId::new(3)), Some("skill_3"));
        assert_eq!(u.ids().count(), 5);
        assert_eq!(u.iter().count(), 5);
        assert!(SkillUniverse::new().is_empty());
    }

    #[test]
    fn display_and_conversions() {
        let s: SkillId = 7usize.into();
        assert_eq!(s.index(), 7);
        assert_eq!(s.to_string(), "s7");
    }
}
