//! Property-based tests for the skills substrate.

use proptest::prelude::*;
use tfsn_skills::task::Task;
use tfsn_skills::taskgen::{assign_skills_zipf, random_tasks, ZipfAssignmentConfig};
use tfsn_skills::zipf::ZipfSampler;
use tfsn_skills::{SkillId, SkillSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skillset_matches_reference_hashset(
        capacity in 1usize..300,
        ops in proptest::collection::vec((0usize..300, prop::bool::ANY), 0..100)
    ) {
        let mut set = SkillSet::new(capacity);
        let mut reference = std::collections::HashSet::new();
        for (id, insert) in ops {
            let skill = SkillId::new(id);
            if insert {
                set.insert(skill);
                if id < capacity {
                    reference.insert(id);
                }
            } else {
                set.remove(skill);
                reference.remove(&id);
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        for id in 0..capacity {
            prop_assert_eq!(set.contains(SkillId::new(id)), reference.contains(&id));
        }
        let iterated: Vec<usize> = set.iter().map(|s| s.index()).collect();
        let mut expected: Vec<usize> = reference.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(iterated, expected);
    }

    #[test]
    fn set_algebra_laws(
        capacity in 1usize..200,
        a in proptest::collection::vec(0usize..200, 0..60),
        b in proptest::collection::vec(0usize..200, 0..60),
    ) {
        let sa = SkillSet::from_iter_with_capacity(capacity, a.iter().map(|&i| SkillId::new(i)));
        let sb = SkillSet::from_iter_with_capacity(capacity, b.iter().map(|&i| SkillId::new(i)));
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        let mut union = sa.clone();
        union.union_with(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        // A \ B ⊆ A and disjoint from B
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert!(diff.is_subset_of(&sa));
        prop_assert!(!diff.intersects(&sb) || diff.is_empty());
        // intersection_len agrees with materialised intersection
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
        // subset relations
        prop_assert!(inter.is_subset_of(&sa));
        prop_assert!(sa.is_subset_of(&union));
    }

    #[test]
    fn task_dedup_and_coverage(skills in proptest::collection::vec(0usize..100, 0..40)) {
        let task = Task::new(skills.iter().map(|&i| SkillId::new(i)));
        // Size equals the number of distinct skills.
        let distinct: std::collections::HashSet<_> = skills.iter().collect();
        prop_assert_eq!(task.len(), distinct.len());
        // The task is covered exactly by its own skill set.
        let own = task.to_skillset(100);
        prop_assert!(task.is_covered_by(&own));
        prop_assert!(task.uncovered(&own).is_empty());
        // Removing one required skill breaks coverage.
        if let Some(&first) = task.skills().first() {
            let mut partial = own.clone();
            partial.remove(first);
            prop_assert!(!task.is_covered_by(&partial));
            prop_assert_eq!(task.uncovered(&partial), vec![first]);
        }
    }

    #[test]
    fn zipf_probabilities_are_monotone(n in 1usize..200, exp in 0.2f64..2.5) {
        let z = ZipfSampler::new(n, exp);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for r in 1..n {
            prop_assert!(z.probability(r - 1) >= z.probability(r) - 1e-12);
        }
    }

    #[test]
    fn random_tasks_are_within_universe(
        universe in 1usize..200,
        size in 1usize..20,
        seed in 0u64..500,
    ) {
        let tasks = random_tasks(universe, size, 10, seed);
        prop_assert_eq!(tasks.len(), 10);
        for t in &tasks {
            prop_assert_eq!(t.len(), size.min(universe));
            prop_assert!(t.skills().iter().all(|s| s.index() < universe));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn assignment_index_is_consistent(
        users in 1usize..80,
        skills in 1usize..40,
        grants in 0usize..300,
        seed in 0u64..100,
    ) {
        let a = assign_skills_zipf(&ZipfAssignmentConfig {
            users,
            skills,
            total_grants: grants,
            min_skills_per_user: 1,
            exponent: 1.0,
            seed,
        });
        // The inverted index and the per-user sets agree.
        let mut total_from_index = 0usize;
        for s in 0..skills {
            let skill = SkillId::new(s);
            for &u in a.users_with_skill(skill) {
                prop_assert!(a.has_skill(u as usize, skill));
                total_from_index += 1;
            }
        }
        let total_from_users: usize = (0..users).map(|u| a.skills_of(u).len()).sum();
        prop_assert_eq!(total_from_index, total_from_users);
        prop_assert!(a.covered_skill_count() <= skills);
    }
}
