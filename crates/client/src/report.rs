//! Observability payload schemas: the JSON shapes served by the `metrics`
//! and `telemetry` protocol operations.
//!
//! These are pure wire types — the engine-side collectors
//! (`tfsn_engine::EngineMetrics`, `tfsn_engine::telemetry`) populate them;
//! clients, the cluster router, and dashboards deserialize them without
//! linking the server. The engine re-exports them under their historical
//! paths (`tfsn_engine::MetricsSnapshot`,
//! `tfsn_engine::telemetry::TelemetryReport`, …).

use serde::{Deserialize, Serialize};

/// A point-in-time copy of the engine's serving counters plus the
/// relation-store gauges. Serialised as one JSON object by
/// `tfsn serve-batch` and inside the `metrics` protocol response.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Queries answered (any status).
    pub queries_served: u64,
    /// Queries answered with a team.
    pub queries_solved: u64,
    /// Queries that performed no build work (everything resident, or they
    /// only waited on another query's in-flight build).
    pub cache_hits: u64,
    /// Queries that performed build work themselves: ran the matrix build,
    /// or computed at least one row. Matrix tier: equals the number of
    /// query-triggered matrix builds exactly (`warm()` pre-builds are not
    /// queries and count only in `matrix_builds`). Row tier: one miss may
    /// cover many row builds, so `cache_misses <= row_builds`.
    pub cache_misses: u64,
    /// Total in-engine time across queries, in microseconds. Under
    /// parallel serving this exceeds wall-clock time.
    pub busy_micros: u64,
    /// Slice of `busy_micros` spent building relation state: the fetch
    /// phase (matrix build/wait, row-store creation), row computations, and
    /// time blocked on another query's in-flight row build.
    pub build_wait_micros: u64,
    /// Full compatibility matrices built (matrix tier).
    pub matrix_builds: u64,
    /// Per-source rows computed (row tier; recomputations after eviction
    /// included).
    pub row_builds: u64,
    /// Rows evicted to stay within the memory budget (row tier).
    pub row_evictions: u64,
    /// Per-source rows currently resident across row-tier shards.
    pub resident_rows: u64,
    /// Bytes currently resident across relation tiers (estimated for
    /// matrices, exact for rows).
    pub resident_bytes: u64,
    /// Live edge mutations applied to this deployment (no-op sign sets
    /// included; failed mutations are not).
    pub mutations_applied: u64,
    /// Resident rows invalidated by mutations — dropped from row-tier
    /// shards, or left behind (not migrated) by a matrix→rows downgrade.
    /// Every invalidated row that is queried again recomputes exactly once,
    /// so after a quiesced warm scan `row_builds` grows by at most this.
    pub rows_invalidated: u64,
    /// 50th-percentile query latency in microseconds, from the engine's
    /// telemetry histogram (within one bucket — at most 12.5% — of the
    /// exact sample percentile). `None` from peers predating the telemetry
    /// subsystem; the percentile fields are `Option` so old snapshots still
    /// deserialize.
    pub query_p50_micros: Option<u64>,
    /// 90th-percentile query latency, microseconds.
    pub query_p90_micros: Option<u64>,
    /// 99th-percentile query latency, microseconds.
    pub query_p99_micros: Option<u64>,
    /// 99.9th-percentile query latency, microseconds.
    pub query_p999_micros: Option<u64>,
    /// Largest observed query latency, microseconds (exact).
    pub query_max_micros: Option<u64>,
}

impl MetricsSnapshot {
    /// Adds `other`'s counters into `self`, field-wise — the protocol's
    /// `metrics` operation reports one such sum across every loaded
    /// deployment alongside the per-deployment snapshots.
    ///
    /// Percentiles do not sum: for the `query_p*`/`query_max` fields the
    /// result is the field-wise **max** (a conservative upper bound; the
    /// service recomputes exact cross-deployment percentiles from merged
    /// histograms where it has them — see the `metrics` dispatch arm).
    ///
    /// The exhaustive destructuring below is the drift guard: adding a
    /// field to [`MetricsSnapshot`] without deciding how it aggregates
    /// fails to compile here.
    pub fn accumulate(&mut self, other: &MetricsSnapshot) {
        let MetricsSnapshot {
            queries_served,
            queries_solved,
            cache_hits,
            cache_misses,
            busy_micros,
            build_wait_micros,
            matrix_builds,
            row_builds,
            row_evictions,
            resident_rows,
            resident_bytes,
            mutations_applied,
            rows_invalidated,
            query_p50_micros,
            query_p90_micros,
            query_p99_micros,
            query_p999_micros,
            query_max_micros,
        } = other;
        self.queries_served += queries_served;
        self.queries_solved += queries_solved;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.busy_micros += busy_micros;
        self.build_wait_micros += build_wait_micros;
        self.matrix_builds += matrix_builds;
        self.row_builds += row_builds;
        self.row_evictions += row_evictions;
        self.resident_rows += resident_rows;
        self.resident_bytes += resident_bytes;
        self.mutations_applied += mutations_applied;
        self.rows_invalidated += rows_invalidated;
        self.query_p50_micros = max_opt(self.query_p50_micros, *query_p50_micros);
        self.query_p90_micros = max_opt(self.query_p90_micros, *query_p90_micros);
        self.query_p99_micros = max_opt(self.query_p99_micros, *query_p99_micros);
        self.query_p999_micros = max_opt(self.query_p999_micros, *query_p999_micros);
        self.query_max_micros = max_opt(self.query_max_micros, *query_max_micros);
    }

    /// Mean in-engine latency per query, in microseconds.
    pub fn mean_latency_micros(&self) -> f64 {
        if self.queries_served == 0 {
            0.0
        } else {
            self.busy_micros as f64 / self.queries_served as f64
        }
    }

    /// Mean solver + lookup latency per query (build/wait time excluded),
    /// in microseconds.
    pub fn mean_solve_micros(&self) -> f64 {
        if self.queries_served == 0 {
            0.0
        } else {
            self.busy_micros.saturating_sub(self.build_wait_micros) as f64
                / self.queries_served as f64
        }
    }
}

/// Max of two optional values, treating `None` as absent (not zero).
fn max_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Percentile summary of one histogram, as serialized in telemetry reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_micros: u64,
    /// Largest sample, microseconds.
    pub max_micros: u64,
    /// Mean sample, microseconds.
    pub mean_micros: f64,
    /// 50th percentile, microseconds (upper edge of the crossing bucket).
    pub p50_micros: u64,
    /// 90th percentile, microseconds.
    pub p90_micros: u64,
    /// 99th percentile, microseconds.
    pub p99_micros: u64,
    /// 99.9th percentile, microseconds.
    pub p999_micros: u64,
}

/// One labelled axis entry (an op, phase, or kind) with its summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisStats {
    /// The op/phase/kind label.
    pub label: String,
    /// Its latency summary.
    pub stats: HistogramStats,
}

/// One retained slow query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQuery {
    /// Monotonic ordinal of the query in this engine's stream (0-based;
    /// timestamp-free, so entries order and correlate across axes).
    pub seq: u64,
    /// Compatibility kind label.
    pub kind: String,
    /// Solver label.
    pub algorithm: String,
    /// Objective label (one of `Objective::ALL_LABELS`).
    pub objective: String,
    /// Total in-engine time, microseconds.
    pub total_micros: u64,
    /// Build-wait phase slice, microseconds.
    pub build_wait_micros: u64,
    /// Row-compute phase slice, microseconds.
    pub row_compute_micros: u64,
    /// Solve phase slice, microseconds.
    pub solve_micros: u64,
    /// Members in the returned team (0 when unsolved).
    pub team_size: u64,
    /// Whether the query was answered with a team.
    pub solved: bool,
}

/// The per-deployment payload of the `telemetry` protocol operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Per-operation latency summaries (`query`/`batch`/`mutate`/`warm`).
    pub ops: Vec<AxisStats>,
    /// Per-phase latency summaries
    /// (`build_wait`/`row_compute`/`solve`/`serialize`).
    pub phases: Vec<AxisStats>,
    /// Per-kind query-latency summaries, `CompatibilityKind::ALL` order.
    pub kinds: Vec<AxisStats>,
    /// Per-objective query-latency summaries, `Objective::ALL_LABELS`
    /// order.
    pub objectives: Vec<AxisStats>,
    /// Slowest retained queries, slowest first.
    pub slow_queries: Vec<SlowQuery>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_as_json() {
        let snap = MetricsSnapshot {
            matrix_builds: 2,
            row_builds: 17,
            row_evictions: 5,
            resident_rows: 12,
            resident_bytes: 4096,
            query_p99_micros: Some(1234),
            ..Default::default()
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"row_evictions\":5"));
        assert!(json.contains("\"query_p99_micros\":1234"));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn pre_telemetry_snapshots_still_deserialize() {
        // A peer running the pre-PR-6 schema omits the percentile fields;
        // they must come back as None, not a parse error.
        let old = r#"{"queries_served":3,"queries_solved":2,"cache_hits":1,
            "cache_misses":2,"busy_micros":500,"build_wait_micros":100,
            "matrix_builds":1,"row_builds":0,"row_evictions":0,
            "resident_rows":0,"resident_bytes":64,"mutations_applied":0,
            "rows_invalidated":0}"#;
        let snap: MetricsSnapshot = serde_json::from_str(old).unwrap();
        assert_eq!(snap.queries_served, 3);
        assert_eq!(snap.query_p50_micros, None);
        assert_eq!(snap.query_max_micros, None);
    }

    #[test]
    fn json_serialization_covers_every_field() {
        // Companion to `accumulate`'s destructuring guard: the exhaustive
        // pattern below fails to compile when a field is added, and the
        // string list next to it must then grow too, or the length/lookup
        // assertions fail — so a new field cannot silently skip either the
        // aggregation decision or the wire format.
        let snap = MetricsSnapshot::default();
        let MetricsSnapshot {
            queries_served: _,
            queries_solved: _,
            cache_hits: _,
            cache_misses: _,
            busy_micros: _,
            build_wait_micros: _,
            matrix_builds: _,
            row_builds: _,
            row_evictions: _,
            resident_rows: _,
            resident_bytes: _,
            mutations_applied: _,
            rows_invalidated: _,
            query_p50_micros: _,
            query_p90_micros: _,
            query_p99_micros: _,
            query_p999_micros: _,
            query_max_micros: _,
        } = &snap;
        let fields = [
            "queries_served",
            "queries_solved",
            "cache_hits",
            "cache_misses",
            "busy_micros",
            "build_wait_micros",
            "matrix_builds",
            "row_builds",
            "row_evictions",
            "resident_rows",
            "resident_bytes",
            "mutations_applied",
            "rows_invalidated",
            "query_p50_micros",
            "query_p90_micros",
            "query_p99_micros",
            "query_p999_micros",
            "query_max_micros",
        ];
        let value = serde::Serialize::to_value(&snap);
        let map = value.as_map().expect("snapshot serializes as an object");
        assert_eq!(map.len(), fields.len(), "field count drifted");
        for field in fields {
            assert!(
                map.iter().any(|(k, _)| k == field),
                "field {field} missing from JSON serialization"
            );
        }
    }

    #[test]
    fn percentiles_accumulate_as_max() {
        let mut a = MetricsSnapshot {
            query_p50_micros: Some(10),
            query_max_micros: Some(100),
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            query_p50_micros: Some(30),
            query_p99_micros: Some(70),
            ..MetricsSnapshot::default()
        };
        a.accumulate(&b);
        assert_eq!(a.query_p50_micros, Some(30));
        assert_eq!(a.query_p99_micros, Some(70));
        assert_eq!(a.query_max_micros, Some(100));
    }

    #[test]
    fn telemetry_report_round_trips_as_json() {
        let report = TelemetryReport {
            ops: vec![AxisStats {
                label: "query".to_string(),
                stats: HistogramStats {
                    count: 2,
                    sum_micros: 300,
                    max_micros: 250,
                    mean_micros: 150.0,
                    p50_micros: 64,
                    p90_micros: 256,
                    p99_micros: 256,
                    p999_micros: 256,
                },
            }],
            phases: Vec::new(),
            kinds: Vec::new(),
            objectives: Vec::new(),
            slow_queries: vec![SlowQuery {
                seq: 0,
                kind: "SPM".to_string(),
                algorithm: "LCMD".to_string(),
                objective: "min_team".to_string(),
                total_micros: 250,
                build_wait_micros: 100,
                row_compute_micros: 50,
                solve_micros: 100,
                team_size: 3,
                solved: true,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
