//! # tfsn-client
//!
//! The client SDK for the tfsn serving protocol — everything a remote
//! caller (or the cluster router) needs to speak to a `tfsn serve-http`
//! process, with **no dependency on the engine**:
//!
//! * [`proto`] — the versioned envelope protocol: [`Request`] /
//!   [`Response`] / [`ServiceError`] wire types, the mutation codec, and
//!   the replication [`proto::WalRecords`] payload.
//! * [`query`] / [`answer`] — the JSONL [`TeamQuery`] / [`TeamAnswer`]
//!   line formats carried inside batches.
//! * [`report`] — the observability payload schemas ([`MetricsSnapshot`],
//!   [`TelemetryReport`]) so dashboards can parse `/v1/metrics` and
//!   `/v1/telemetry` without linking the server.
//! * [`client`] — [`HttpClient`], a minimal blocking keep-alive HTTP/1.1
//!   client with capped-jittered GET retries.
//!
//! The engine re-exports these modules under their historical
//! `tfsn_engine::{proto, query, answer, client}` paths, so server-side
//! code and pre-split callers compile unchanged. This crate is the half
//! of the protocol that ships to other processes; the serving half stays
//! in `tfsn-engine`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod client;
pub mod proto;
pub mod query;
pub mod report;

pub use answer::{AnswerStatus, TeamAnswer};
pub use client::{HttpClient, HttpReply};
pub use proto::{Request, RequestBody, Response, ServiceError, PROTOCOL_VERSION};
pub use query::{QueryReadError, TeamQuery};
pub use report::{MetricsSnapshot, TelemetryReport};
