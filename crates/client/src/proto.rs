//! The transport-agnostic service protocol: a versioned [`Request`] /
//! [`Response`] envelope with typed error variants.
//!
//! Every transport — the CLI `serve-batch`/`stats` adapters, the engine's
//! HTTP/1.1 front-end, the cluster router, and remote clients built on
//! this crate — speaks this protocol against one service. A request names
//! an operation (`op`), optionally a deployment in the service's registry,
//! and carries the protocol `version` so old clients fail loudly
//! ([`ServiceError::UnsupportedVersion`]) instead of mis-parsing.
//!
//! On the wire an envelope is one JSON object:
//!
//! ```json
//! {"version": 1, "op": "batch", "deployment": "epinions",
//!  "timing": false, "queries": [{"task": [3, 19, 4]}]}
//! ```
//!
//! ```json
//! {"version": 1, "op": "batch", "answers": [{"status": "ok", "...": "..."}]}
//! ```
//!
//! Errors are a response variant, not an HTTP afterthought:
//!
//! ```json
//! {"version": 1, "op": "error",
//!  "error": {"code": "unknown_deployment", "deployment": "prod",
//!            "message": "unknown deployment `prod` (available: slashdot)"}}
//! ```
//!
//! The serde impls are hand-written (like the [`crate::TeamQuery`] wire
//! types) so the format stays flat and label-based rather than mirroring
//! Rust enum structure; `tests/proto.rs` property-tests that every variant —
//! errors included — survives serialize → parse.

use std::fmt;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use signed_graph::{EdgeMutation, NodeId, Sign};
use tfsn_core::compat::CompatibilityKind;
use tfsn_datasets::DatasetStats;

use crate::answer::TeamAnswer;
use crate::query::TeamQuery;
use crate::report::{MetricsSnapshot, TelemetryReport};

/// The protocol version this build speaks. Bump on breaking envelope
/// changes; requests carrying any other version are rejected with
/// [`ServiceError::UnsupportedVersion`] before their body is interpreted.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on mutations per `mutate_batch` envelope (and therefore per
/// write-ahead-log group record). Enough to swallow a full replication pull
/// chunk in one sweep, small enough that one group payload stays far below
/// the log's record-size cap.
pub const MAX_BATCH_MUTATIONS: usize = 1024;

/// One request envelope: the operation body plus the deployment it targets
/// (`None` = the registry's default deployment).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Named deployment to serve from (`None` = registry default).
    pub deployment: Option<String>,
    /// The operation.
    pub body: RequestBody,
    /// Per-request deadline budget in milliseconds, counted from when the
    /// service starts dispatching. Work still pending at the deadline is
    /// abandoned with [`ServiceError::DeadlineExceeded`] — checked before
    /// each solve and between batch chunks, so granularity is one chunk.
    /// `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request against the default deployment.
    pub fn new(body: RequestBody) -> Self {
        Request {
            deployment: None,
            body,
            deadline_ms: None,
        }
    }

    /// Targets a named deployment.
    pub fn on(mut self, deployment: impl Into<String>) -> Self {
        self.deployment = Some(deployment.into());
        self
    }

    /// Sets the deadline budget (milliseconds from dispatch).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Parses an envelope from a [`Value`] tree with typed errors:
    /// version mismatches become [`ServiceError::UnsupportedVersion`],
    /// unknown `op` labels [`ServiceError::UnknownOp`], everything else
    /// malformed [`ServiceError::BadRequest`].
    pub fn parse_value(v: &Value) -> Result<Self, ServiceError> {
        let map = v
            .as_map()
            .ok_or_else(|| bad("request envelope must be a JSON object"))?;
        let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let version = field("version")
            .ok_or_else(|| bad("request is missing required field `version`"))?
            .as_u64()
            .ok_or_else(|| bad("field `version` must be a non-negative integer"))?;
        if version != u64::from(PROTOCOL_VERSION) {
            return Err(ServiceError::UnsupportedVersion {
                requested: version,
                supported: PROTOCOL_VERSION,
            });
        }
        let deployment = match field("deployment") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| bad("field `deployment` must be a string"))?
                    .to_string(),
            ),
        };
        let op = field("op")
            .ok_or_else(|| bad("request is missing required field `op`"))?
            .as_str()
            .ok_or_else(|| bad("field `op` must be a string label"))?;
        let timing = match field("timing") {
            None | Some(Value::Null) => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("field `timing` must be a boolean")),
        };
        let deadline_ms = match field("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                bad("field `deadline_ms` must be a non-negative integer of milliseconds")
            })?),
        };
        let body =
            match op {
                "query" => {
                    let q = field("query").ok_or_else(|| bad("op `query` needs field `query`"))?;
                    RequestBody::Query {
                        query: TeamQuery::from_value(q)
                            .map_err(|e| bad(format!("field `query`: {e}")))?,
                        timing,
                    }
                }
                "batch" => {
                    let qs = field("queries")
                        .ok_or_else(|| bad("op `batch` needs field `queries`"))?
                        .as_seq()
                        .ok_or_else(|| bad("field `queries` must be an array"))?;
                    let queries = qs
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            TeamQuery::from_value(q).map_err(|e| bad(format!("queries[{i}]: {e}")))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    RequestBody::Batch { queries, timing }
                }
                "warm" => RequestBody::Warm {
                    kinds: parse_kinds(field("kinds"), "kinds")?,
                },
                "stats" => RequestBody::Stats,
                "metrics" => RequestBody::Metrics,
                "telemetry" => RequestBody::Telemetry,
                "deployments" => RequestBody::Deployments,
                "wal_pull" => RequestBody::WalPull {
                    from_seq: match field("from_seq") {
                        None | Some(Value::Null) => 0,
                        Some(v) => v.as_u64().ok_or_else(|| {
                            bad("field `from_seq` must be a non-negative record index")
                        })?,
                    },
                    max: match field("max") {
                        None | Some(Value::Null) => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            bad("field `max` must be a non-negative record count")
                        })?),
                    },
                },
                "mutate_batch" => RequestBody::MutateBatch {
                    mutations: parse_mutations_field(
                        field("mutations")
                            .ok_or_else(|| bad("op `mutate_batch` needs field `mutations`"))?,
                    )?,
                },
                op => match parse_mutation_fields(op, &field)? {
                    Some(body) => body,
                    None => {
                        return Err(ServiceError::UnknownOp { op: op.to_string() });
                    }
                },
            };
        Ok(Request {
            deployment,
            body,
            deadline_ms,
        })
    }

    /// Parses an envelope from JSON text (see [`Request::parse_value`]).
    pub fn parse_json(json: &str) -> Result<Self, ServiceError> {
        let value: Value =
            serde_json::from_str(json).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        Request::parse_value(&value)
    }
}

/// The operation of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Answer one team query. `timing: false` zeroes the latency fields of
    /// the answer so output is byte-stable across runs and transports.
    Query {
        /// The query.
        query: TeamQuery,
        /// Report per-query latency fields (default `true`).
        timing: bool,
    },
    /// Answer a batch of queries (order-stable, parallel).
    Batch {
        /// The queries, answered in order.
        queries: Vec<TeamQuery>,
        /// Report per-query latency fields (default `true`).
        timing: bool,
    },
    /// Pre-initialise relation state so subsequent queries are warm. An
    /// empty `kinds` list warms every evaluated relation kind.
    Warm {
        /// Relation kinds to warm (empty = all evaluated kinds).
        kinds: Vec<CompatibilityKind>,
    },
    /// Deployment statistics plus the serving plan.
    Stats,
    /// Serving metrics of every loaded deployment.
    Metrics,
    /// Latency telemetry (per-op/per-phase/per-kind percentile summaries
    /// and the slow-query log) of every loaded deployment — or of the one
    /// deployment the envelope names.
    Telemetry,
    /// List the registry's deployments.
    Deployments,
    /// Pull acknowledged records from the deployment's write-ahead log —
    /// the replication feed (`GET /v1/wal`). Record sequence numbers are
    /// 0-based positions in the log; followers resume from the `next_seq`
    /// of the previous pull.
    WalPull {
        /// First record sequence wanted (0 = from the beginning).
        from_seq: u64,
        /// At most this many records (`None` = the server's cap).
        max: Option<u64>,
    },
    /// Insert an edge into the live graph (`sign` travels as `"+"`/`"-"`).
    /// Mutations target loaded deployments only — they never force a load.
    EdgeInsert {
        /// One endpoint (a user id).
        u: usize,
        /// The other endpoint.
        v: usize,
        /// The new edge's label.
        sign: Sign,
    },
    /// Remove an existing edge (either sign) from the live graph.
    EdgeRemove {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Set the sign of an existing edge. Setting the sign it already has
    /// is acknowledged (`changed: false`) without invalidating anything.
    EdgeSetSign {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
        /// The label the edge should have.
        sign: Sign,
    },
    /// Apply up to [`MAX_BATCH_MUTATIONS`] mutations in one envelope: one
    /// write-order acquisition, one merged invalidation sweep, one atomic
    /// write-ahead-log group (crash recovery replays all of the batch or
    /// none of it). Answer-equivalent to sending the mutations one by one —
    /// a rejected mutation reports its error in place and later mutations
    /// still apply.
    MutateBatch {
        /// The mutations, applied in order (each the same shape as a bare
        /// mutation object: `{"op": "edge_insert", "u": 1, "v": 2,
        /// "sign": "+"}`).
        mutations: Vec<EdgeMutation>,
    },
}

impl RequestBody {
    /// Every request `op` label this protocol version speaks — the closure
    /// the docs-coverage test checks `docs/PROTOCOL.md` against, so a new
    /// operation cannot ship undocumented.
    pub const ALL_OPS: [&'static str; 12] = [
        "query",
        "batch",
        "warm",
        "stats",
        "metrics",
        "telemetry",
        "deployments",
        "wal_pull",
        "edge_insert",
        "edge_remove",
        "edge_set_sign",
        "mutate_batch",
    ];

    /// The wire label of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Query { .. } => "query",
            RequestBody::Batch { .. } => "batch",
            RequestBody::Warm { .. } => "warm",
            RequestBody::Stats => "stats",
            RequestBody::Metrics => "metrics",
            RequestBody::Telemetry => "telemetry",
            RequestBody::Deployments => "deployments",
            RequestBody::WalPull { .. } => "wal_pull",
            RequestBody::EdgeInsert { .. } => "edge_insert",
            RequestBody::EdgeRemove { .. } => "edge_remove",
            RequestBody::EdgeSetSign { .. } => "edge_set_sign",
            RequestBody::MutateBatch { .. } => "mutate_batch",
        }
    }

    /// The graph-delta operation of a mutation request (`None` for the
    /// non-mutating operations).
    pub fn mutation(&self) -> Option<EdgeMutation> {
        match *self {
            RequestBody::EdgeInsert { u, v, sign } => Some(EdgeMutation::Insert {
                u: NodeId::new(u),
                v: NodeId::new(v),
                sign,
            }),
            RequestBody::EdgeRemove { u, v } => Some(EdgeMutation::Remove {
                u: NodeId::new(u),
                v: NodeId::new(v),
            }),
            RequestBody::EdgeSetSign { u, v, sign } => Some(EdgeMutation::SetSign {
                u: NodeId::new(u),
                v: NodeId::new(v),
                sign,
            }),
            _ => None,
        }
    }
}

/// Parses the fields of a mutation op (`edge_insert` / `edge_remove` /
/// `edge_set_sign`) given a field accessor; `Ok(None)` when `op` is not a
/// mutation label. Shared by the envelope parser, the bare
/// `POST /v1/mutate` body and the `tfsn mutate` JSONL stream.
fn parse_mutation_fields<'a>(
    op: &str,
    field: &impl Fn(&str) -> Option<&'a Value>,
) -> Result<Option<RequestBody>, ServiceError> {
    if !matches!(op, "edge_insert" | "edge_remove" | "edge_set_sign") {
        return Ok(None);
    }
    let node = |key: &str| {
        field(key)
            .ok_or_else(|| bad(format!("op `{op}` needs field `{key}`")))?
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("field `{key}` must be a non-negative user id")))
    };
    let sign = || {
        let v = field("sign").ok_or_else(|| bad(format!("op `{op}` needs field `sign`")))?;
        let label = v
            .as_str()
            .ok_or_else(|| bad("field `sign` must be \"+\" or \"-\""))?;
        match label {
            "+" | "positive" => Ok(Sign::Positive),
            "-" | "negative" => Ok(Sign::Negative),
            other => Err(bad(format!(
                "field `sign` must be \"+\" or \"-\", got `{other}`"
            ))),
        }
    };
    let (u, v) = (node("u")?, node("v")?);
    Ok(Some(match op {
        "edge_insert" => RequestBody::EdgeInsert {
            u,
            v,
            sign: sign()?,
        },
        "edge_remove" => RequestBody::EdgeRemove { u, v },
        _ => RequestBody::EdgeSetSign {
            u,
            v,
            sign: sign()?,
        },
    }))
}

/// Parses a `mutations` array (bare mutation objects, in apply order) and
/// enforces the [`MAX_BATCH_MUTATIONS`] cap. Shared by the `mutate_batch`
/// envelope arm and the write-ahead log's group-record decoder.
fn parse_mutations_field(v: &Value) -> Result<Vec<EdgeMutation>, ServiceError> {
    let seq = v
        .as_seq()
        .ok_or_else(|| bad("field `mutations` must be an array of mutation objects"))?;
    if seq.is_empty() {
        return Err(bad("field `mutations` needs at least one mutation"));
    }
    if seq.len() > MAX_BATCH_MUTATIONS {
        return Err(bad(format!(
            "field `mutations` accepts at most {MAX_BATCH_MUTATIONS} mutations per batch, got {}",
            seq.len()
        )));
    }
    seq.iter()
        .enumerate()
        .map(|(i, m)| {
            parse_mutation_value(m)
                .map(|body| body.mutation().expect("mutation bodies only"))
                .map_err(|e| bad(format!("mutations[{i}]: {e}")))
        })
        .collect()
}

/// Parses one *bare* mutation object — the `POST /v1/mutate` request body
/// and one line of the `tfsn mutate` JSONL stream:
///
/// ```json
/// {"op": "edge_set_sign", "u": 17, "v": 42, "sign": "-"}
/// ```
///
/// Unlike envelopes there is no `version` field; the transport that carries
/// it (the versioned URL `/v1/mutate`, or the CLI of the same build) pins
/// the version.
pub fn parse_mutation_value(v: &Value) -> Result<RequestBody, ServiceError> {
    let map = v
        .as_map()
        .ok_or_else(|| bad("mutation must be a JSON object"))?;
    let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    // The bare object has no deployment channel — that is the transport's
    // job (`?deployment=` on /v1/mutate, `--select` on the CLI). Silently
    // ignoring an envelope-style `deployment` field here would apply the
    // mutation to the *default* deployment: a cross-deployment write, not
    // a tolerable extra field.
    if field("deployment").is_some() {
        return Err(bad(
            "mutation objects carry no `deployment` field; address a deployment with \
             `?deployment=NAME` (HTTP) or `--select NAME` (CLI), or use the envelope \
             protocol via /v1/rpc",
        ));
    }
    let op = field("op")
        .ok_or_else(|| bad("mutation is missing required field `op`"))?
        .as_str()
        .ok_or_else(|| bad("field `op` must be a string label"))?;
    parse_mutation_fields(op, &field)?.ok_or_else(|| {
        bad(format!(
            "`{op}` is not a mutation op (expected edge_insert, edge_remove or edge_set_sign)"
        ))
    })
}

/// [`parse_mutation_value`] over JSON text.
pub fn parse_mutation_json(json: &str) -> Result<RequestBody, ServiceError> {
    let value: Value = serde_json::from_str(json).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    parse_mutation_value(&value)
}

/// The wire label of a sign (`"+"` / `"-"`).
pub fn sign_label(sign: Sign) -> &'static str {
    match sign {
        Sign::Positive => "+",
        Sign::Negative => "-",
    }
}

/// The bare wire object of one mutation — the exact shape
/// [`parse_mutation_value`] accepts, and therefore one `tfsn mutate` JSONL
/// line or a `POST /v1/mutate` body. The write-ahead log
/// ([`crate::wal`]) frames these same objects, so a WAL export *is* a
/// replayable mutation stream.
pub fn mutation_value(mutation: &EdgeMutation) -> Value {
    let mut m: Vec<(String, Value)> =
        vec![("op".to_string(), Value::Str(mutation.op().to_string()))];
    let (u, v) = mutation.endpoints();
    m.push(("u".to_string(), Value::UInt(u.index() as u64)));
    m.push(("v".to_string(), Value::UInt(v.index() as u64)));
    match *mutation {
        EdgeMutation::Insert { sign, .. } | EdgeMutation::SetSign { sign, .. } => {
            m.push(("sign".to_string(), Value::Str(sign_label(sign).to_string())));
        }
        EdgeMutation::Remove { .. } => {}
    }
    Value::Map(m)
}

/// [`mutation_value`] as compact JSON text (one JSONL line, no newline).
pub fn mutation_json(mutation: &EdgeMutation) -> String {
    serde_json::to_string(&mutation_value(mutation))
        .expect("mutation wire objects always serialize")
}

/// The wire object of one mutation *group* — the payload of a batched
/// write-ahead-log record:
///
/// ```json
/// {"op": "mutate_batch", "mutations": [{"op": "edge_insert", "u": 1,
///  "v": 2, "sign": "+"}, {"op": "edge_remove", "u": 3, "v": 4}]}
/// ```
pub fn mutation_batch_value(mutations: &[EdgeMutation]) -> Value {
    Value::Map(vec![
        ("op".to_string(), Value::Str("mutate_batch".to_string())),
        (
            "mutations".to_string(),
            Value::Seq(mutations.iter().map(mutation_value).collect()),
        ),
    ])
}

/// [`mutation_batch_value`] as compact JSON text.
pub fn mutation_batch_json(mutations: &[EdgeMutation]) -> String {
    serde_json::to_string(&mutation_batch_value(mutations))
        .expect("mutation wire objects always serialize")
}

/// Parses one write-ahead-log record payload: either a single bare
/// mutation object (one mutation) or a `mutate_batch` group (its mutations
/// in apply order). The flattened view is what log consumers see — group
/// boundaries matter for crash atomicity, not for sequence numbering.
pub fn parse_mutation_group_json(json: &str) -> Result<Vec<EdgeMutation>, ServiceError> {
    let value: Value = serde_json::from_str(json).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let map = value
        .as_map()
        .ok_or_else(|| bad("mutation record must be a JSON object"))?;
    let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    if field("op").and_then(|v| v.as_str()) == Some("mutate_batch") {
        return parse_mutations_field(
            field("mutations").ok_or_else(|| bad("op `mutate_batch` needs field `mutations`"))?,
        );
    }
    let body = parse_mutation_value(&value)?;
    Ok(vec![body.mutation().expect("mutation bodies only")])
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            (
                "version".to_string(),
                Value::UInt(u64::from(PROTOCOL_VERSION)),
            ),
            ("op".to_string(), Value::Str(self.body.op().to_string())),
        ];
        if let Some(d) = &self.deployment {
            m.push(("deployment".to_string(), Value::Str(d.clone())));
        }
        if let Some(ms) = self.deadline_ms {
            m.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
        match &self.body {
            RequestBody::Query { query, timing } => {
                if !timing {
                    m.push(("timing".to_string(), Value::Bool(false)));
                }
                m.push(("query".to_string(), query.to_value()));
            }
            RequestBody::Batch { queries, timing } => {
                if !timing {
                    m.push(("timing".to_string(), Value::Bool(false)));
                }
                m.push(("queries".to_string(), queries.to_value()));
            }
            RequestBody::Warm { kinds } => {
                m.push(("kinds".to_string(), kinds_value(kinds)));
            }
            RequestBody::Stats
            | RequestBody::Metrics
            | RequestBody::Telemetry
            | RequestBody::Deployments => {}
            RequestBody::WalPull { from_seq, max } => {
                m.push(("from_seq".to_string(), Value::UInt(*from_seq)));
                if let Some(max) = max {
                    m.push(("max".to_string(), Value::UInt(*max)));
                }
            }
            RequestBody::EdgeInsert { u, v, sign } | RequestBody::EdgeSetSign { u, v, sign } => {
                m.push(("u".to_string(), Value::UInt(*u as u64)));
                m.push(("v".to_string(), Value::UInt(*v as u64)));
                m.push((
                    "sign".to_string(),
                    Value::Str(sign_label(*sign).to_string()),
                ));
            }
            RequestBody::EdgeRemove { u, v } => {
                m.push(("u".to_string(), Value::UInt(*u as u64)));
                m.push(("v".to_string(), Value::UInt(*v as u64)));
            }
            RequestBody::MutateBatch { mutations } => {
                m.push((
                    "mutations".to_string(),
                    Value::Seq(mutations.iter().map(mutation_value).collect()),
                ));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Request::parse_value(v).map_err(|e| SerdeError::custom(e.to_string()))
    }
}

/// One response envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The answer to a [`RequestBody::Query`].
    Answer(TeamAnswer),
    /// The answers to a [`RequestBody::Batch`], in query order.
    Batch(Vec<TeamAnswer>),
    /// Acknowledgement of a [`RequestBody::Warm`].
    Warmed {
        /// The deployment that was warmed.
        deployment: String,
        /// The kinds that were warmed.
        kinds: Vec<CompatibilityKind>,
        /// Wall-clock warm-up time, microseconds.
        micros: u64,
    },
    /// Deployment statistics plus the serving plan.
    Stats(DeploymentStats),
    /// Serving metrics per loaded deployment plus their sum.
    Metrics {
        /// Per-deployment snapshots (loaded deployments only — metrics do
        /// not force a load).
        deployments: Vec<DeploymentMetrics>,
        /// The field-wise sum over `deployments`.
        total: MetricsSnapshot,
    },
    /// Latency telemetry per loaded deployment (see
    /// [`crate::telemetry::TelemetryReport`]). Exact cross-deployment
    /// percentiles require merging histograms, so no `total` is summed
    /// here; the `metrics` op's total carries merged query percentiles.
    Telemetry {
        /// Per-deployment telemetry reports (loaded deployments only —
        /// telemetry does not force a load).
        deployments: Vec<DeploymentTelemetry>,
    },
    /// The registry listing.
    Deployments(Vec<DeploymentInfo>),
    /// A slice of the deployment's write-ahead log, for
    /// [`RequestBody::WalPull`]. Records are the bare mutation wire
    /// objects, in log (= apply) order; replaying them through the
    /// mutation path reproduces the primary's graph.
    WalRecords {
        /// The deployment whose log was pulled.
        deployment: String,
        /// Sequence of the first record in `records` (echoes the
        /// request's effective `from_seq`, clamped to the log length).
        from_seq: u64,
        /// Where the next pull should resume: `from_seq + records.len()`.
        next_seq: u64,
        /// Acknowledged records in the whole log at serve time — so
        /// `end_seq - next_seq` is the follower's remaining lag.
        end_seq: u64,
        /// The records themselves (possibly fewer than requested).
        records: Vec<EdgeMutation>,
    },
    /// Acknowledgement of a mutation op (`edge_insert` / `edge_remove` /
    /// `edge_set_sign`).
    Mutated {
        /// The deployment that was mutated.
        deployment: String,
        /// The mutation op that was applied (`edge_insert`, …).
        mutation: String,
        /// `false` for a no-op `edge_set_sign` to the sign the edge already
        /// had (nothing was invalidated).
        changed: bool,
        /// Resident relation rows invalidated by the mutation.
        rows_invalidated: u64,
        /// Matrix-tier kinds downgraded to row serving by this mutation.
        downgraded: Vec<CompatibilityKind>,
        /// Live edge count after the mutation.
        edges: u64,
        /// Wall-clock time applying the mutation, microseconds.
        micros: u64,
    },
    /// Acknowledgement of a [`RequestBody::MutateBatch`]: per-mutation
    /// outcomes in request order plus the merged invalidation accounting
    /// of the single sweep that applied them.
    MutatedBatch {
        /// The deployment that was mutated.
        deployment: String,
        /// One outcome per requested mutation, in order.
        outcomes: Vec<MutationOutcome>,
        /// Resident relation rows invalidated by the whole batch.
        rows_invalidated: u64,
        /// Resident rows kept by in-place repair instead of invalidation.
        rows_repaired: u64,
        /// Matrix-tier kinds downgraded to row serving by this batch.
        downgraded: Vec<CompatibilityKind>,
        /// Live edge count after the batch.
        edges: u64,
        /// Wall-clock time applying the batch, microseconds.
        micros: u64,
    },
    /// The request failed; the envelope carries the typed error.
    Error(ServiceError),
}

/// One mutation's outcome inside a [`Response::MutatedBatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// The mutation op label (`edge_insert`, …).
    pub mutation: String,
    /// `true` when the mutation applied (no-op sign sets included).
    pub applied: bool,
    /// `true` when the mutation structurally changed the graph.
    pub changed: bool,
    /// The typed rejection when `applied` is `false`.
    pub error: Option<ServiceError>,
}

impl Serialize for MutationOutcome {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("mutation".to_string(), Value::Str(self.mutation.clone())),
            ("applied".to_string(), Value::Bool(self.applied)),
            ("changed".to_string(), Value::Bool(self.changed)),
        ];
        if let Some(e) = &self.error {
            m.push(("error".to_string(), e.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for MutationOutcome {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("mutation outcome must be a JSON object"))?;
        let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let flag = |key: &str| match field(key) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(SerdeError::custom(format!(
                "mutation outcome field `{key}` must be a boolean"
            ))),
        };
        Ok(MutationOutcome {
            mutation: field("mutation")
                .and_then(|v| v.as_str())
                .ok_or_else(|| SerdeError::custom("mutation outcome needs a `mutation` label"))?
                .to_string(),
            applied: flag("applied")?,
            changed: flag("changed")?,
            error: match field("error") {
                None | Some(Value::Null) => None,
                Some(e) => Some(
                    ServiceError::parse_value(e).map_err(|e| SerdeError::custom(e.to_string()))?,
                ),
            },
        })
    }
}

impl Response {
    /// The wire label of this response kind.
    pub fn op(&self) -> &'static str {
        match self {
            Response::Answer(_) => "answer",
            Response::Batch(_) => "batch",
            Response::Warmed { .. } => "warmed",
            Response::Stats(_) => "stats",
            Response::Metrics { .. } => "metrics",
            Response::Telemetry { .. } => "telemetry",
            Response::Deployments(_) => "deployments",
            Response::WalRecords { .. } => "wal_records",
            Response::Mutated { .. } => "mutated",
            Response::MutatedBatch { .. } => "mutated_batch",
            Response::Error(_) => "error",
        }
    }

    /// The error, when this is an error response.
    pub fn error(&self) -> Option<&ServiceError> {
        match self {
            Response::Error(e) => Some(e),
            _ => None,
        }
    }

    /// Parses a response envelope with typed errors (mirrors
    /// [`Request::parse_value`]).
    pub fn parse_value(v: &Value) -> Result<Self, ServiceError> {
        let map = v
            .as_map()
            .ok_or_else(|| bad("response envelope must be a JSON object"))?;
        let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let version = field("version")
            .ok_or_else(|| bad("response is missing required field `version`"))?
            .as_u64()
            .ok_or_else(|| bad("field `version` must be a non-negative integer"))?;
        if version != u64::from(PROTOCOL_VERSION) {
            return Err(ServiceError::UnsupportedVersion {
                requested: version,
                supported: PROTOCOL_VERSION,
            });
        }
        let op = field("op")
            .ok_or_else(|| bad("response is missing required field `op`"))?
            .as_str()
            .ok_or_else(|| bad("field `op` must be a string label"))?;
        let required =
            |key: &str| field(key).ok_or_else(|| bad(format!("op `{op}` needs `{key}`")));
        let parsed = match op {
            "answer" => Response::Answer(
                TeamAnswer::from_value(required("answer")?)
                    .map_err(|e| bad(format!("field `answer`: {e}")))?,
            ),
            "batch" => Response::Batch(
                Vec::<TeamAnswer>::from_value(required("answers")?)
                    .map_err(|e| bad(format!("field `answers`: {e}")))?,
            ),
            "warmed" => Response::Warmed {
                deployment: String::from_value(required("deployment")?)
                    .map_err(|e| bad(format!("field `deployment`: {e}")))?,
                kinds: parse_kinds(field("kinds"), "kinds")?,
                micros: required("micros")?
                    .as_u64()
                    .ok_or_else(|| bad("field `micros` must be a non-negative integer"))?,
            },
            "stats" => Response::Stats(
                DeploymentStats::from_value(v).map_err(|e| bad(format!("stats response: {e}")))?,
            ),
            "metrics" => Response::Metrics {
                deployments: Vec::<DeploymentMetrics>::from_value(required("deployments")?)
                    .map_err(|e| bad(format!("field `deployments`: {e}")))?,
                total: MetricsSnapshot::from_value(required("total")?)
                    .map_err(|e| bad(format!("field `total`: {e}")))?,
            },
            "telemetry" => Response::Telemetry {
                deployments: Vec::<DeploymentTelemetry>::from_value(required("deployments")?)
                    .map_err(|e| bad(format!("field `deployments`: {e}")))?,
            },
            "deployments" => Response::Deployments(
                Vec::<DeploymentInfo>::from_value(required("deployments")?)
                    .map_err(|e| bad(format!("field `deployments`: {e}")))?,
            ),
            "wal_records" => {
                let u64_of = |key: &str| {
                    required(key)?
                        .as_u64()
                        .ok_or_else(|| bad(format!("field `{key}` must be a non-negative integer")))
                };
                let records = required("records")?
                    .as_seq()
                    .ok_or_else(|| bad("field `records` must be an array of mutation objects"))?
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        parse_mutation_value(r)
                            .and_then(|body| body.mutation().ok_or_else(|| bad("not a mutation")))
                            .map_err(|e| bad(format!("records[{i}]: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Response::WalRecords {
                    deployment: String::from_value(required("deployment")?)
                        .map_err(|e| bad(format!("field `deployment`: {e}")))?,
                    from_seq: u64_of("from_seq")?,
                    next_seq: u64_of("next_seq")?,
                    end_seq: u64_of("end_seq")?,
                    records,
                }
            }
            "mutated" => {
                let u64_of = |key: &str| {
                    required(key)?
                        .as_u64()
                        .ok_or_else(|| bad(format!("field `{key}` must be a non-negative integer")))
                };
                Response::Mutated {
                    deployment: String::from_value(required("deployment")?)
                        .map_err(|e| bad(format!("field `deployment`: {e}")))?,
                    mutation: String::from_value(required("mutation")?)
                        .map_err(|e| bad(format!("field `mutation`: {e}")))?,
                    changed: match required("changed")? {
                        Value::Bool(b) => *b,
                        _ => return Err(bad("field `changed` must be a boolean")),
                    },
                    rows_invalidated: u64_of("rows_invalidated")?,
                    downgraded: parse_kinds(field("downgraded"), "downgraded")?,
                    edges: u64_of("edges")?,
                    micros: u64_of("micros")?,
                }
            }
            "mutated_batch" => {
                let u64_of = |key: &str| {
                    required(key)?
                        .as_u64()
                        .ok_or_else(|| bad(format!("field `{key}` must be a non-negative integer")))
                };
                Response::MutatedBatch {
                    deployment: String::from_value(required("deployment")?)
                        .map_err(|e| bad(format!("field `deployment`: {e}")))?,
                    outcomes: Vec::<MutationOutcome>::from_value(required("outcomes")?)
                        .map_err(|e| bad(format!("field `outcomes`: {e}")))?,
                    rows_invalidated: u64_of("rows_invalidated")?,
                    rows_repaired: u64_of("rows_repaired")?,
                    downgraded: parse_kinds(field("downgraded"), "downgraded")?,
                    edges: u64_of("edges")?,
                    micros: u64_of("micros")?,
                }
            }
            "error" => Response::Error(ServiceError::parse_value(required("error")?)?),
            other => {
                return Err(ServiceError::UnknownOp {
                    op: other.to_string(),
                })
            }
        };
        Ok(parsed)
    }

    /// Parses a response envelope from JSON text.
    pub fn parse_json(json: &str) -> Result<Self, ServiceError> {
        let value: Value =
            serde_json::from_str(json).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        Response::parse_value(&value)
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            (
                "version".to_string(),
                Value::UInt(u64::from(PROTOCOL_VERSION)),
            ),
            ("op".to_string(), Value::Str(self.op().to_string())),
        ];
        match self {
            Response::Answer(a) => m.push(("answer".to_string(), a.to_value())),
            Response::Batch(answers) => m.push(("answers".to_string(), answers.to_value())),
            Response::Warmed {
                deployment,
                kinds,
                micros,
            } => {
                m.push(("deployment".to_string(), Value::Str(deployment.clone())));
                m.push(("kinds".to_string(), kinds_value(kinds)));
                m.push(("micros".to_string(), Value::UInt(*micros)));
            }
            Response::Stats(stats) => {
                // Flatten the two stats sections into the envelope so the
                // payload matches the CLI `stats` output shape.
                if let Value::Map(fields) = stats.to_value() {
                    m.extend(fields);
                }
            }
            Response::Metrics { deployments, total } => {
                m.push(("deployments".to_string(), deployments.to_value()));
                m.push(("total".to_string(), total.to_value()));
            }
            Response::Telemetry { deployments } => {
                m.push(("deployments".to_string(), deployments.to_value()));
            }
            Response::Deployments(infos) => m.push(("deployments".to_string(), infos.to_value())),
            Response::WalRecords {
                deployment,
                from_seq,
                next_seq,
                end_seq,
                records,
            } => {
                m.push(("deployment".to_string(), Value::Str(deployment.clone())));
                m.push(("from_seq".to_string(), Value::UInt(*from_seq)));
                m.push(("next_seq".to_string(), Value::UInt(*next_seq)));
                m.push(("end_seq".to_string(), Value::UInt(*end_seq)));
                m.push((
                    "records".to_string(),
                    Value::Seq(records.iter().map(mutation_value).collect()),
                ));
            }
            Response::Mutated {
                deployment,
                mutation,
                changed,
                rows_invalidated,
                downgraded,
                edges,
                micros,
            } => {
                m.push(("deployment".to_string(), Value::Str(deployment.clone())));
                m.push(("mutation".to_string(), Value::Str(mutation.clone())));
                m.push(("changed".to_string(), Value::Bool(*changed)));
                m.push((
                    "rows_invalidated".to_string(),
                    Value::UInt(*rows_invalidated),
                ));
                m.push(("downgraded".to_string(), kinds_value(downgraded)));
                m.push(("edges".to_string(), Value::UInt(*edges)));
                m.push(("micros".to_string(), Value::UInt(*micros)));
            }
            Response::MutatedBatch {
                deployment,
                outcomes,
                rows_invalidated,
                rows_repaired,
                downgraded,
                edges,
                micros,
            } => {
                m.push(("deployment".to_string(), Value::Str(deployment.clone())));
                m.push(("outcomes".to_string(), outcomes.to_value()));
                m.push((
                    "rows_invalidated".to_string(),
                    Value::UInt(*rows_invalidated),
                ));
                m.push(("rows_repaired".to_string(), Value::UInt(*rows_repaired)));
                m.push(("downgraded".to_string(), kinds_value(downgraded)));
                m.push(("edges".to_string(), Value::UInt(*edges)));
                m.push(("micros".to_string(), Value::UInt(*micros)));
            }
            Response::Error(e) => m.push(("error".to_string(), e.to_value())),
        }
        Value::Map(m)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Response::parse_value(v).map_err(|e| SerdeError::custom(e.to_string()))
    }
}

/// Deployment statistics plus the serving plan — the payload of
/// [`Response::Stats`] and the body of the CLI `stats` subcommand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentStats {
    /// Table-1 style statistics of the deployment's dataset.
    pub dataset: DatasetStats,
    /// The serving plan the store policy assigns to this deployment.
    pub serving: ServingPlan,
    /// On a follower: how many primary WAL records have been replayed
    /// (the follower's replication high-water mark). Absent on servers
    /// that are not following anything, and in pre-replication payloads.
    pub replicated_seq: Option<u64>,
}

/// The serving plan the store policy assigns to one deployment
/// (deterministic — nothing is built to report it). The engine constructs
/// it (`tfsn_engine::Service` fills it from the live store policy); here
/// it is a pure wire type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingPlan {
    /// Tier-selection mode (`auto`, `matrix`, `rows`).
    pub mode: String,
    /// Resident-byte cap per relation kind, if any.
    pub memory_budget_bytes: Option<u64>,
    /// The tier every relation kind of this deployment is assigned.
    pub tier: String,
    /// Estimated bytes of one fully materialised matrix.
    pub estimated_matrix_bytes: u64,
    /// Estimated bytes of a single cached bit-packed row (1 bit + 2 bytes
    /// per node plus the row header).
    pub estimated_row_bytes: u64,
    /// How many bit-packed rows the configured budget keeps resident per
    /// relation kind (`None` without a budget: unbounded).
    pub budget_resident_rows: Option<u64>,
}

/// One deployment's serving metrics, for [`Response::Metrics`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentMetrics {
    /// The deployment name.
    pub deployment: String,
    /// Its metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// One deployment's latency telemetry, for [`Response::Telemetry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentTelemetry {
    /// The deployment name.
    pub deployment: String,
    /// Its telemetry report: per-op/per-phase/per-kind percentile
    /// summaries plus the slow-query log.
    pub telemetry: TelemetryReport,
}

/// One registry entry, for [`Response::Deployments`]. Shape fields are
/// `None` until the deployment is lazily loaded by its first request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentInfo {
    /// The deployment name (the `deployment` field of requests).
    pub name: String,
    /// `true` for the registry's default deployment.
    pub default: bool,
    /// Whether the deployment has been loaded into memory.
    pub loaded: bool,
    /// Users, once loaded.
    pub users: Option<u64>,
    /// Edges, once loaded.
    pub edges: Option<u64>,
    /// Distinct skills, once loaded.
    pub skills: Option<u64>,
    /// Serving tier (`matrix`/`rows`), once loaded.
    pub tier: Option<String>,
}

/// Typed service errors — the `error` payload of [`Response::Error`].
/// Replaces the ad-hoc `String` errors of the pre-protocol CLI paths:
/// transports map codes to their own status space (the HTTP front-end maps
/// `unknown_deployment` to 404, `too_large` to 413, the rest of the client
/// errors to 400) without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request's protocol version is not spoken by this build.
    UnsupportedVersion {
        /// The version the client sent.
        requested: u64,
        /// The version this build speaks.
        supported: u32,
    },
    /// The request targets a deployment outside the registry.
    UnknownDeployment {
        /// The deployment that was requested.
        name: String,
        /// The names the registry does serve.
        available: Vec<String>,
    },
    /// The request's `op` label is not a known operation.
    UnknownOp {
        /// The label that was sent.
        op: String,
    },
    /// The request was malformed (bad JSON, missing/ill-typed fields,
    /// unparseable query lines — the detail says which).
    BadRequest {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// The request body exceeds the transport's size cap.
    TooLarge {
        /// The cap, in bytes.
        limit_bytes: u64,
    },
    /// The server is at capacity; retry later (after the `Retry-After`
    /// header's delay, when the HTTP transport carried the response). The
    /// one retryable code.
    Overloaded {
        /// The saturated concurrency cap: the connection cap when the
        /// accept path shed, or the in-flight cap when the admission gate
        /// did.
        max_connections: u64,
    },
    /// The request's `deadline_ms` budget ran out before the work
    /// completed. Answers already streamed out stand; pending work was
    /// abandoned. Not retryable as-is — retrying the same request with the
    /// same budget deterministically re-fails under the same load.
    DeadlineExceeded {
        /// The budget that was exhausted, milliseconds.
        deadline_ms: u64,
    },
    /// The cluster router has no healthy backend for the deployment this
    /// request targets (every replica is ejected, or the primary is down
    /// and the request is a mutation). Retryable after the `Retry-After`
    /// delay — health probes re-admit backends as they recover.
    NoBackend {
        /// The deployment that could not be routed.
        deployment: String,
        /// What the router needed (`"primary"` or `"replica"`).
        role: String,
    },
    /// A server-side fault (transport I/O, invariant breach) — not a
    /// problem with the request; clients should not treat it as one.
    Internal {
        /// Human-readable description of the fault.
        detail: String,
    },
}

impl ServiceError {
    /// Every error code this protocol version can emit — the closure the
    /// docs-coverage test checks `docs/PROTOCOL.md` against, so a new error
    /// variant cannot ship undocumented.
    pub const ALL_CODES: [&'static str; 9] = [
        "unsupported_version",
        "unknown_deployment",
        "unknown_op",
        "bad_request",
        "too_large",
        "overloaded",
        "deadline_exceeded",
        "no_backend",
        "internal",
    ];

    /// The stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnsupportedVersion { .. } => "unsupported_version",
            ServiceError::UnknownDeployment { .. } => "unknown_deployment",
            ServiceError::UnknownOp { .. } => "unknown_op",
            ServiceError::BadRequest { .. } => "bad_request",
            ServiceError::TooLarge { .. } => "too_large",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::NoBackend { .. } => "no_backend",
            ServiceError::Internal { .. } => "internal",
        }
    }

    /// Parses the typed error payload.
    pub fn parse_value(v: &Value) -> Result<Self, ServiceError> {
        let code = v
            .get("code")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("error payload needs a string `code`"))?;
        let u64_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(format!("error code `{code}` needs integer `{key}`")))
        };
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("error code `{code}` needs string `{key}`")))
        };
        match code {
            "unsupported_version" => Ok(ServiceError::UnsupportedVersion {
                requested: u64_field("requested")?,
                supported: u64_field("supported")? as u32,
            }),
            "unknown_deployment" => Ok(ServiceError::UnknownDeployment {
                name: str_field("deployment")?,
                available: match v.get("available") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(a) => Vec::<String>::from_value(a)
                        .map_err(|e| bad(format!("field `available`: {e}")))?,
                },
            }),
            "unknown_op" => Ok(ServiceError::UnknownOp {
                op: str_field("op")?,
            }),
            "bad_request" => Ok(ServiceError::BadRequest {
                detail: str_field("message")?,
            }),
            "too_large" => Ok(ServiceError::TooLarge {
                limit_bytes: u64_field("limit_bytes")?,
            }),
            "overloaded" => Ok(ServiceError::Overloaded {
                max_connections: u64_field("max_connections")?,
            }),
            "deadline_exceeded" => Ok(ServiceError::DeadlineExceeded {
                deadline_ms: u64_field("deadline_ms")?,
            }),
            "no_backend" => Ok(ServiceError::NoBackend {
                deployment: str_field("deployment")?,
                role: str_field("role")?,
            }),
            "internal" => Ok(ServiceError::Internal {
                detail: str_field("message")?,
            }),
            other => Err(bad(format!("unknown error code `{other}`"))),
        }
    }
}

impl Serialize for ServiceError {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> =
            vec![("code".to_string(), Value::Str(self.code().to_string()))];
        match self {
            ServiceError::UnsupportedVersion {
                requested,
                supported,
            } => {
                m.push(("requested".to_string(), Value::UInt(*requested)));
                m.push(("supported".to_string(), Value::UInt(u64::from(*supported))));
            }
            ServiceError::UnknownDeployment { name, available } => {
                m.push(("deployment".to_string(), Value::Str(name.clone())));
                m.push(("available".to_string(), available.to_value()));
            }
            ServiceError::UnknownOp { op } => {
                m.push(("op".to_string(), Value::Str(op.clone())));
            }
            ServiceError::TooLarge { limit_bytes } => {
                m.push(("limit_bytes".to_string(), Value::UInt(*limit_bytes)));
            }
            ServiceError::Overloaded { max_connections } => {
                m.push(("max_connections".to_string(), Value::UInt(*max_connections)));
            }
            ServiceError::DeadlineExceeded { deadline_ms } => {
                m.push(("deadline_ms".to_string(), Value::UInt(*deadline_ms)));
            }
            ServiceError::NoBackend { deployment, role } => {
                m.push(("deployment".to_string(), Value::Str(deployment.clone())));
                m.push(("role".to_string(), Value::Str(role.clone())));
            }
            // `message` (below) doubles as the detail for bad_request and
            // internal; for the other codes it is derived display text.
            ServiceError::BadRequest { .. } | ServiceError::Internal { .. } => {}
        }
        m.push(("message".to_string(), Value::Str(self.to_string())));
        Value::Map(m)
    }
}

impl Deserialize for ServiceError {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        ServiceError::parse_value(v).map_err(|e| SerdeError::custom(e.to_string()))
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "unsupported protocol version {requested} (this build speaks {supported})"
            ),
            ServiceError::UnknownDeployment { name, available } => write!(
                f,
                "unknown deployment `{name}` (available: {})",
                available.join(", ")
            ),
            ServiceError::UnknownOp { op } => write!(f, "unknown op `{op}`"),
            ServiceError::BadRequest { detail } => f.write_str(detail),
            ServiceError::TooLarge { limit_bytes } => {
                write!(f, "request body exceeds the {limit_bytes}-byte limit")
            }
            ServiceError::Overloaded { max_connections } => {
                write!(
                    f,
                    "server at its {max_connections}-connection capacity; retry later"
                )
            }
            ServiceError::DeadlineExceeded { deadline_ms } => {
                write!(
                    f,
                    "deadline of {deadline_ms} ms exceeded before the request completed"
                )
            }
            ServiceError::NoBackend { deployment, role } => {
                write!(
                    f,
                    "no healthy {role} backend for deployment `{deployment}`; retry later"
                )
            }
            ServiceError::Internal { detail } => f.write_str(detail),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Kind lists travel as arrays of the paper's short labels (`"SPA"`, …).
fn kinds_value(kinds: &[CompatibilityKind]) -> Value {
    Value::Seq(
        kinds
            .iter()
            .map(|k| Value::Str(k.label().to_string()))
            .collect(),
    )
}

/// Parses an optional kind-label array; `name` is the field being parsed
/// (`kinds`, `downgraded`, …) so diagnostics point at the right field.
fn parse_kinds(v: Option<&Value>, name: &str) -> Result<Vec<CompatibilityKind>, ServiceError> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    let seq = v.as_seq().ok_or_else(|| {
        bad(format!(
            "field `{name}` must be an array of relation labels"
        ))
    })?;
    seq.iter()
        .map(|k| {
            let label = k
                .as_str()
                .ok_or_else(|| bad(format!("field `{name}` must contain string labels")))?;
            CompatibilityKind::parse(label)
                .ok_or_else(|| bad(format!("unknown compatibility kind `{label}` in `{name}`")))
        })
        .collect()
}

fn bad(detail: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_defaults() {
        let req = Request::new(RequestBody::Batch {
            queries: vec![TeamQuery::new([1, 2]).with_id(7)],
            timing: false,
        })
        .on("epinions");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"version\":1"), "{json}");
        assert!(json.contains("\"op\":\"batch\""), "{json}");
        assert!(json.contains("\"timing\":false"), "{json}");
        assert_eq!(Request::parse_json(&json).unwrap(), req);
    }

    #[test]
    fn wrong_version_is_typed_rejection() {
        let err = Request::parse_json(r#"{"version": 2, "op": "stats"}"#).unwrap_err();
        assert_eq!(
            err,
            ServiceError::UnsupportedVersion {
                requested: 2,
                supported: PROTOCOL_VERSION
            }
        );
        assert!(Request::parse_json(r#"{"op": "stats"}"#)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn unknown_op_is_typed() {
        let err = Request::parse_json(r#"{"version": 1, "op": "mutate"}"#).unwrap_err();
        assert_eq!(
            err,
            ServiceError::UnknownOp {
                op: "mutate".to_string()
            }
        );
    }

    #[test]
    fn error_response_round_trips() {
        for err in [
            ServiceError::UnsupportedVersion {
                requested: 9,
                supported: PROTOCOL_VERSION,
            },
            ServiceError::UnknownDeployment {
                name: "prod".to_string(),
                available: vec!["slashdot".to_string(), "epinions".to_string()],
            },
            ServiceError::UnknownOp {
                op: "mutate".to_string(),
            },
            ServiceError::BadRequest {
                detail: "line 3: bad json".to_string(),
            },
            ServiceError::TooLarge { limit_bytes: 4096 },
            ServiceError::Overloaded {
                max_connections: 256,
            },
            ServiceError::DeadlineExceeded { deadline_ms: 250 },
            ServiceError::NoBackend {
                deployment: "slashdot".to_string(),
                role: "replica".to_string(),
            },
            ServiceError::Internal {
                detail: "stream failed: broken pipe".to_string(),
            },
        ] {
            let resp = Response::Error(err.clone());
            let json = serde_json::to_string(&resp).unwrap();
            assert!(json.contains(err.code()), "{json}");
            assert_eq!(Response::parse_json(&json).unwrap(), resp);
        }
    }

    #[test]
    fn all_ops_is_closed_over_the_parser() {
        for op in RequestBody::ALL_OPS {
            let json = format!("{{\"version\": 1, \"op\": \"{op}\"}}");
            match Request::parse_json(&json) {
                Ok(req) => assert_eq!(req.body.op(), op),
                // Recognised op, missing fields: still not UnknownOp.
                Err(ServiceError::BadRequest { .. }) => {}
                Err(other) => panic!("op `{op}` not recognised: {other:?}"),
            }
        }
        assert_eq!(ServiceError::ALL_CODES.len(), 9);
    }

    #[test]
    fn deadline_field_round_trips_and_is_typed() {
        let req = Request::new(RequestBody::Stats).with_deadline_ms(250);
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"deadline_ms\":250"), "{json}");
        assert_eq!(Request::parse_json(&json).unwrap(), req);
        // Absent and null both mean "no deadline".
        let req = Request::parse_json(r#"{"version": 1, "op": "stats"}"#).unwrap();
        assert_eq!(req.deadline_ms, None);
        let req =
            Request::parse_json(r#"{"version": 1, "op": "stats", "deadline_ms": null}"#).unwrap();
        assert_eq!(req.deadline_ms, None);
        // Ill-typed deadlines are typed bad requests.
        for bad in [
            r#"{"version": 1, "op": "stats", "deadline_ms": "fast"}"#,
            r#"{"version": 1, "op": "stats", "deadline_ms": -5}"#,
        ] {
            let err = Request::parse_json(bad).unwrap_err();
            assert!(
                matches!(err, ServiceError::BadRequest { .. }),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn mutation_json_round_trips_through_the_bare_parser() {
        for m in [
            EdgeMutation::Insert {
                u: NodeId::new(3),
                v: NodeId::new(9),
                sign: Sign::Negative,
            },
            EdgeMutation::Remove {
                u: NodeId::new(1),
                v: NodeId::new(2),
            },
            EdgeMutation::SetSign {
                u: NodeId::new(0),
                v: NodeId::new(7),
                sign: Sign::Positive,
            },
        ] {
            let line = mutation_json(&m);
            let body = parse_mutation_json(&line).unwrap();
            assert_eq!(body.mutation(), Some(m), "{line}");
        }
    }

    #[test]
    fn mutation_envelopes_and_bare_objects_parse() {
        let req = Request::parse_json(
            r#"{"version": 1, "op": "edge_insert", "deployment": "sd",
                "u": 3, "v": 9, "sign": "-"}"#,
        )
        .unwrap();
        assert_eq!(
            req.body,
            RequestBody::EdgeInsert {
                u: 3,
                v: 9,
                sign: Sign::Negative
            }
        );
        assert_eq!(
            req.body.mutation(),
            Some(EdgeMutation::Insert {
                u: NodeId::new(3),
                v: NodeId::new(9),
                sign: Sign::Negative
            })
        );
        // The bare object (the /v1/mutate body) parses to the same variant.
        let bare =
            parse_mutation_json(r#"{"op": "edge_insert", "u": 3, "v": 9, "sign": "-"}"#).unwrap();
        assert_eq!(bare, req.body);
        // `positive`/`negative` labels are accepted on input; `+`/`-` are
        // what serialization emits.
        let bare =
            parse_mutation_json(r#"{"op": "edge_set_sign", "u": 1, "v": 2, "sign": "positive"}"#)
                .unwrap();
        let json = serde_json::to_string(&Request::new(bare)).unwrap();
        assert!(json.contains("\"sign\":\"+\""), "{json}");
        // Typed failures: bad sign, missing fields, non-mutation op.
        for bad in [
            r#"{"op": "edge_insert", "u": 1, "v": 2, "sign": "0"}"#,
            r#"{"op": "edge_insert", "u": 1, "sign": "+"}"#,
            r#"{"op": "edge_remove", "u": 1, "v": -2}"#,
            r#"{"op": "warm"}"#,
            r#"{"u": 1, "v": 2}"#,
            // A bare mutation must not smuggle a deployment: silently
            // ignoring it would mutate the default deployment instead.
            r#"{"op": "edge_remove", "deployment": "lab", "u": 1, "v": 2}"#,
        ] {
            assert!(
                matches!(
                    parse_mutation_json(bad),
                    Err(ServiceError::BadRequest { .. })
                ),
                "{bad} must be a typed bad_request"
            );
        }
    }

    #[test]
    fn telemetry_op_round_trips() {
        let req = Request::new(RequestBody::Telemetry).on("sd");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"telemetry\""), "{json}");
        assert_eq!(Request::parse_json(&json).unwrap(), req);

        let report = TelemetryReport {
            ops: vec![crate::report::AxisStats {
                label: "query".to_string(),
                stats: crate::report::HistogramStats {
                    count: 1,
                    sum_micros: 250,
                    max_micros: 250,
                    mean_micros: 250.0,
                    p50_micros: 256,
                    p90_micros: 256,
                    p99_micros: 256,
                    p999_micros: 256,
                },
            }],
            phases: Vec::new(),
            kinds: Vec::new(),
            objectives: Vec::new(),
            slow_queries: vec![crate::report::SlowQuery {
                seq: 0,
                kind: "SPA".to_string(),
                algorithm: "LCMD".to_string(),
                objective: "min_team".to_string(),
                total_micros: 250,
                build_wait_micros: 40,
                row_compute_micros: 10,
                solve_micros: 200,
                team_size: 3,
                solved: true,
            }],
        };
        let resp = Response::Telemetry {
            deployments: vec![DeploymentTelemetry {
                deployment: "sd".to_string(),
                telemetry: report,
            }],
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"p99_micros\""), "{json}");
        assert!(json.contains("\"slow_queries\""), "{json}");
        assert_eq!(Response::parse_json(&json).unwrap(), resp);

        // Error path: a telemetry response without its payload is typed.
        let err = Response::parse_json(r#"{"version": 1, "op": "telemetry"}"#).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest { .. }));
    }

    #[test]
    fn wal_pull_round_trips_with_defaults() {
        // Explicit slice.
        let req = Request::new(RequestBody::WalPull {
            from_seq: 12,
            max: Some(64),
        })
        .on("sd");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"wal_pull\""), "{json}");
        assert!(json.contains("\"from_seq\":12"), "{json}");
        assert_eq!(Request::parse_json(&json).unwrap(), req);
        // Absent fields default: from the beginning, server-capped count.
        let req = Request::parse_json(r#"{"version": 1, "op": "wal_pull"}"#).unwrap();
        assert_eq!(
            req.body,
            RequestBody::WalPull {
                from_seq: 0,
                max: None
            }
        );
        // Ill-typed slicing is a typed bad request.
        let err = Request::parse_json(r#"{"version": 1, "op": "wal_pull", "from_seq": "x"}"#)
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest { .. }));
    }

    #[test]
    fn wal_records_response_round_trips() {
        let resp = Response::WalRecords {
            deployment: "sd".to_string(),
            from_seq: 2,
            next_seq: 4,
            end_seq: 9,
            records: vec![
                EdgeMutation::Insert {
                    u: NodeId::new(3),
                    v: NodeId::new(9),
                    sign: Sign::Negative,
                },
                EdgeMutation::Remove {
                    u: NodeId::new(1),
                    v: NodeId::new(2),
                },
            ],
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"op\":\"wal_records\""), "{json}");
        assert!(json.contains("\"end_seq\":9"), "{json}");
        // Records are the bare mutation wire objects — the same shape the
        // WAL frames and `tfsn wal export` emits, so a pull is replayable.
        assert!(
            json.contains(r#"{"op":"edge_insert","u":3,"v":9,"sign":"-"}"#),
            "{json}"
        );
        assert_eq!(Response::parse_json(&json).unwrap(), resp);
        // A record that is not a mutation object is a typed bad request.
        let err = Response::parse_json(
            r#"{"version": 1, "op": "wal_records", "deployment": "sd",
                "from_seq": 0, "next_seq": 1, "end_seq": 1,
                "records": [{"op": "warm"}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest { .. }));
    }

    #[test]
    fn warm_request_defaults_to_all_kinds() {
        let req = Request::parse_json(r#"{"version": 1, "op": "warm"}"#).unwrap();
        assert_eq!(req.body, RequestBody::Warm { kinds: Vec::new() });
        let req = Request::parse_json(r#"{"version": 1, "op": "warm", "kinds": ["SPA", "nne"]}"#)
            .unwrap();
        assert_eq!(
            req.body,
            RequestBody::Warm {
                kinds: vec![CompatibilityKind::Spa, CompatibilityKind::Nne]
            }
        );
    }
}
