//! A minimal blocking HTTP/1.1 client for the tfsn server front-end:
//! one keep-alive connection, `Content-Length`-framed responses, and
//! bounded retry with capped jittered exponential backoff for idempotent
//! reads.
//!
//! This exists so the integration tests, the bench harness, example
//! programs **and the cluster router's backend pools** drive the server
//! through one framing implementation instead of hand-rolled copies.
//!
//! ## Retry semantics
//!
//! Only `GET` requests retry, and only on the two failures that are safe
//! and useful to retry: a typed `overloaded` 503 (the server shed the
//! request *before* doing work, and advertised `Retry-After`) and
//! connection-level I/O errors (connect refused, reset). `POST` — which
//! carries queries, batches and above all **mutations** — never retries:
//! a mutation whose response was lost may have been applied and logged,
//! and blindly resending it would double-apply. Retry delays follow
//! capped exponential backoff with jitter ([`RetryPolicy`]); every retry
//! attempt counts into the process-global `tfsn_client_retries_total`.
//!
//! ## Connection reuse
//!
//! Any fully-framed reply — error statuses included — leaves the
//! connection open for the next request: a typed 404 or 400 from a
//! server (or router) must not churn sockets. The two exceptions are
//! replies carrying `Connection: close` (the server is done with this
//! socket; reusing it would make the *next* request fail with an I/O
//! error, fatal for POSTs, which never retry) and connection-level I/O
//! errors, where the framing state is unknown. Both tear the connection
//! down so the next call reconnects cleanly; [`HttpClient::connects`]
//! counts reconnections so tests can pin the reuse behavior.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static CLIENT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Counts one [`HttpClient`] retry attempt (backoff after an `overloaded`
/// reply or a connect failure). Surfaces process-wide as
/// `tfsn_client_retries_total` in the server's `/metrics` exposition.
pub fn note_client_retry() {
    CLIENT_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Client retries so far in this process.
pub fn client_retries() -> u64 {
    CLIENT_RETRIES.load(Ordering::Relaxed)
}

/// One HTTP response: the status code, response headers, and full body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// The status code (200, 404, …).
    pub status: u16,
    /// Response headers in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The response body, UTF-8 decoded.
    pub body: String,
}

impl HttpReply {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The advertised `Retry-After` delay in whole seconds, if present and
    /// numeric.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// Retry tuning for idempotent reads: `attempts` total tries, with delay
/// `base * 2^i` before retry `i`, capped at `cap`, each jittered down by
/// up to half (full delays from a fleet of clients synchronize their
/// retries into waves; jitter decorrelates them).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Hard cap on any single backoff delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries at all — failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..Default::default()
        }
    }

    /// The jittered, capped delay before retry `attempt` (0-based), using
    /// `entropy` as the jitter source.
    fn delay(&self, attempt: u32, entropy: u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.cap);
        // Jitter into [capped/2, capped]: never zero (a zero delay defeats
        // the point), never over the cap.
        let nanos = capped.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + (entropy % (nanos / 2 + 1)))
    }
}

/// A keep-alive connection to one server. Dropping it closes the
/// connection (and, server-side, frees its handler promptly instead of at
/// the idle timeout).
///
/// # Examples
///
/// Boot an in-process server on an ephemeral port and drive it:
///
/// ```
/// use std::sync::Arc;
/// use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource};
/// use tfsn_engine::{HttpClient, HttpServer, ServerOptions, Service};
///
/// let registry = DeploymentRegistry::single(DeploymentConfig::new(
///     "tiny",
///     DeploymentSource::parse("synthetic:nodes=40,edges=90,skills=6").unwrap(),
/// ));
/// let server = HttpServer::bind(
///     Arc::new(Service::new(registry)),
///     "127.0.0.1:0",
///     ServerOptions::default(),
/// )
/// .unwrap();
///
/// let mut client = HttpClient::connect(server.addr()).unwrap();
/// let reply = client.get("/healthz").unwrap();
/// assert_eq!((reply.status, reply.body.as_str()), (200, "ok\n"));
///
/// // Keep-alive: the same socket serves the next request.
/// let reply = client
///     .post("/v1/query?timing=false", r#"{"id": 1, "task": [0]}"#)
///     .unwrap();
/// assert_eq!(reply.status, 200);
///
/// drop(client);
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    retry: RetryPolicy,
    conn: Option<Conn>,
    /// TCP connections opened over this client's lifetime (1 after
    /// construction; grows only when a reply said `Connection: close` or
    /// an I/O error forced a reconnect).
    connects: u64,
    /// xorshift64 state feeding backoff jitter.
    entropy: u64,
}

#[derive(Debug)]
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Nagle + the peer's delayed ACK turns any request that lands in
        // more than one small segment into a ~40ms stall; a keep-alive
        // request/response protocol must send segments as they are ready.
        stream.set_nodelay(true)?;
        Ok(Conn {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }
}

impl HttpClient {
    /// Connects to `addr` with the default [`RetryPolicy`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connects to `addr` with an explicit retry policy.
    pub fn connect_with(addr: SocketAddr, retry: RetryPolicy) -> std::io::Result<Self> {
        let conn = Conn::open(addr)?;
        Ok(HttpClient {
            addr,
            retry,
            conn: Some(conn),
            connects: 1,
            // Any non-zero seed works for xorshift; derive it from the
            // address so concurrent clients jitter differently.
            entropy: 0x9E37_79B9_7F4A_7C15 ^ u64::from(addr.port()).wrapping_mul(0x100_0000_01B3),
        })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// TCP connections opened so far (1 right after connecting). Stays
    /// flat while replies are fully framed and keep-alive — error
    /// statuses included — and grows by one per `Connection: close`
    /// reply or I/O failure.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// `GET target` (path plus optional query string). Retries per the
    /// [`RetryPolicy`] on connection errors and `overloaded` 503 replies —
    /// GETs are idempotent reads, so resending is always safe.
    pub fn get(&mut self, target: &str) -> std::io::Result<HttpReply> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.request("GET", target, "");
            let retryable = match &outcome {
                Ok(reply) => reply.status == 503,
                Err(_) => true,
            };
            attempt += 1;
            if !retryable || attempt >= self.retry.attempts.max(1) {
                return outcome;
            }
            note_client_retry();
            let entropy = self.next_entropy();
            let mut delay = self.retry.delay(attempt - 1, entropy);
            // An advertised Retry-After (capped) overrides a shorter
            // computed backoff — the server knows its own queue.
            if let Ok(reply) = &outcome {
                if let Some(secs) = reply.retry_after_secs() {
                    delay = delay.max(Duration::from_secs(secs).min(self.retry.cap));
                }
            }
            std::thread::sleep(delay);
        }
    }

    /// `POST target` with `body`. Never retried: POST bodies carry
    /// mutations, and a mutation whose response was lost may already be
    /// applied and logged — resending would double-apply it.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<HttpReply> {
        self.request("POST", target, body)
    }

    /// Fetches the Prometheus scrape (`GET /metrics`) and returns its text
    /// body. Non-200 answers surface as errors, so callers (benches, CI
    /// smoke checks) can pipe the body straight into assertions.
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let reply = self.get("/metrics")?;
        if reply.status != 200 {
            return Err(std::io::Error::other(format!(
                "GET /metrics answered {}",
                reply.status
            )));
        }
        Ok(reply.body)
    }

    fn next_entropy(&mut self) -> u64 {
        // xorshift64: cheap, stateful, good enough to decorrelate sleeps.
        let mut x = self.entropy;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.entropy = x;
        x
    }

    /// Sends one request and reads the full response; the connection stays
    /// open for the next call (HTTP keep-alive) whenever the reply was
    /// fully framed — **error statuses included**, so typed 404/400
    /// replies don't churn sockets. On an I/O failure the connection is
    /// dropped and re-established on the next call, so one reset does not
    /// wedge the client; a fully-framed reply carrying `Connection: close`
    /// also drops it (the server will not read this socket again —
    /// keeping it would make the next request fail instead).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<HttpReply> {
        let outcome = self.request_on_conn(method, target, body);
        match &outcome {
            // The framing state is unknown after an error; start fresh.
            Err(_) => self.conn = None,
            Ok(reply) => {
                let closing = reply
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if closing {
                    self.conn = None;
                }
            }
        }
        outcome
    }

    fn request_on_conn(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<HttpReply> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.addr)?);
            self.connects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        // Head and body go out in ONE write: two small writes would be two
        // TCP segments, and even with Nagle off the server may not see the
        // body until the second segment is delivered — one segment per
        // small request keeps the round trip at one RTT.
        let mut wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: tfsn\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        wire.push_str(body);
        conn.writer.write_all(wire.as_bytes())?;
        conn.writer.flush()?;

        let bad = |detail: String| std::io::Error::other(detail);
        let mut status_line = String::new();
        if conn.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before the status line".into()));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .ok_or_else(|| {
                bad(format!(
                    "malformed status line `{}`",
                    status_line.trim_end()
                ))
            })?
            .parse()
            .map_err(|_| {
                bad(format!(
                    "non-numeric status in `{}`",
                    status_line.trim_end()
                ))
            })?;
        let mut content_length = 0usize;
        let mut chunked = false;
        let mut headers: Vec<(String, String)> = Vec::new();
        loop {
            let mut header = String::new();
            if conn.reader.read_line(&mut header)? == 0 {
                return Err(bad("connection closed mid-headers".into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .parse()
                        .map_err(|_| bad(format!("invalid Content-Length `{value}`")))?;
                } else if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                }
                headers.push((name.to_ascii_lowercase(), value.to_string()));
            }
        }
        let body = if chunked {
            Self::read_chunked_body(&mut conn.reader)?
        } else {
            let mut body = vec![0u8; content_length];
            conn.reader.read_exact(&mut body)?;
            body
        };
        let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8".into()))?;
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    /// Reads an HTTP/1.1 chunked body (the server streams `/v1/batch`
    /// answers this way). A connection closed before the terminal chunk is
    /// a mid-stream server failure and surfaces as an error.
    fn read_chunked_body(reader: &mut BufReader<TcpStream>) -> std::io::Result<Vec<u8>> {
        let bad = |detail: String| std::io::Error::other(detail);
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                return Err(bad("connection closed mid-chunked-body (truncated)".into()));
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("invalid chunk size `{}`", size_line.trim())))?;
            if size == 0 {
                // Terminal chunk; consume the final CRLF (no trailers).
                let mut end = String::new();
                reader.read_line(&mut end)?;
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad("chunk not terminated by CRLF".into()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_within_bounds() {
        let policy = RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(300),
        };
        for attempt in 0..10 {
            for entropy in [0u64, 1, 7, u64::MAX, 0xDEAD_BEEF] {
                let delay = policy.delay(attempt, entropy);
                let uncapped = policy
                    .base
                    .saturating_mul(1u32 << attempt.min(16))
                    .min(policy.cap);
                assert!(
                    delay >= uncapped / 2 && delay <= uncapped,
                    "attempt {attempt}: {delay:?} outside [{:?}, {:?}]",
                    uncapped / 2,
                    uncapped
                );
            }
        }
        // The cap binds from attempt 2 on (100ms, 200ms, then 300ms flat).
        assert!(policy.delay(3, 0) <= Duration::from_millis(300));
    }

    #[test]
    fn error_replies_reuse_the_connection_and_close_is_honored() {
        use std::net::TcpListener;

        // A canned server: the first connection frames a 404, then a 200
        // with `Connection: close`, then stops reading; a second
        // connection frames one final 200.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let respond = |stream: &mut TcpStream, status: &str, close: bool, body: &str| {
                // Drain one request head + empty body before answering.
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap() == 0 || line.trim_end().is_empty() {
                        break;
                    }
                }
                let conn = if close { "close" } else { "keep-alive" };
                let reply = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
                     Connection: {conn}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(reply.as_bytes()).unwrap();
            };
            let (mut stream, _) = listener.accept().unwrap();
            respond(&mut stream, "404 Not Found", false, "nope");
            respond(&mut stream, "200 OK", true, "bye");
            drop(stream);
            let (mut stream, _) = listener.accept().unwrap();
            respond(&mut stream, "200 OK", false, "fresh");
        });

        let mut client = HttpClient::connect_with(addr, RetryPolicy::none()).unwrap();
        assert_eq!(client.connects(), 1);
        // A fully-framed error reply must NOT churn the connection.
        let reply = client.get("/missing").unwrap();
        assert_eq!((reply.status, reply.body.as_str()), (404, "nope"));
        assert_eq!(client.connects(), 1, "404 reply must not reconnect");
        // `Connection: close` tears it down — the next request reconnects
        // cleanly instead of failing on the dead socket.
        let reply = client.get("/done").unwrap();
        assert_eq!((reply.status, reply.body.as_str()), (200, "bye"));
        let reply = client.get("/again").unwrap();
        assert_eq!((reply.status, reply.body.as_str()), (200, "fresh"));
        assert_eq!(client.connects(), 2, "close reply must reconnect once");
        server.join().unwrap();
    }

    #[test]
    fn retry_after_header_parses() {
        let reply = HttpReply {
            status: 503,
            headers: vec![("retry-after".to_string(), "2".to_string())],
            body: String::new(),
        };
        assert_eq!(reply.retry_after_secs(), Some(2));
        assert_eq!(reply.header("Retry-After"), Some("2"));
        assert_eq!(reply.header("missing"), None);
    }
}
