//! The answer type of the serving layer and its wire format.
//!
//! One JSON object per line, mirroring the query:
//!
//! ```json
//! {"id": 7, "status": "ok", "kind": "SPA", "algorithm": "LCMD",
//!  "members": [12, 40, 77], "cardinality": 3, "diameter": 2,
//!  "micros": 184, "build_micros": 0, "cache_hit": true}
//! ```
//!
//! `status` is `"ok"`, `"no_team"` (no compatible covering team exists or
//! the heuristic found none), `"uncoverable"` (some skill has no holder),
//! or `"budget_exceeded"` (the exact solver refused the instance size).

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use tfsn_core::compat::CompatibilityKind;
use tfsn_core::TfsnError;

/// Outcome category of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerStatus {
    /// A compatible covering team was found.
    Ok,
    /// No compatible covering team was found.
    NoTeam,
    /// Some required skill has no holder in the deployment.
    Uncoverable,
    /// The exact solver's instance-size budget was exceeded.
    BudgetExceeded,
}

impl AnswerStatus {
    /// Every status, for exhaustive wire-format tests.
    pub const ALL: [AnswerStatus; 4] = [
        AnswerStatus::Ok,
        AnswerStatus::NoTeam,
        AnswerStatus::Uncoverable,
        AnswerStatus::BudgetExceeded,
    ];

    /// The wire label.
    pub fn label(self) -> &'static str {
        match self {
            AnswerStatus::Ok => "ok",
            AnswerStatus::NoTeam => "no_team",
            AnswerStatus::Uncoverable => "uncoverable",
            AnswerStatus::BudgetExceeded => "budget_exceeded",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "ok" => Some(AnswerStatus::Ok),
            "no_team" => Some(AnswerStatus::NoTeam),
            "uncoverable" => Some(AnswerStatus::Uncoverable),
            "budget_exceeded" => Some(AnswerStatus::BudgetExceeded),
            _ => None,
        }
    }

    /// Maps a solver error to its answer status.
    pub fn from_error(e: &TfsnError) -> Self {
        match e {
            TfsnError::NoCompatibleTeam => AnswerStatus::NoTeam,
            TfsnError::UncoverableSkill(_) => AnswerStatus::Uncoverable,
            TfsnError::SearchBudgetExceeded => AnswerStatus::BudgetExceeded,
            // Deployment-level mismatches cannot occur per-query (the
            // deployment validated them), but map them conservatively.
            _ => AnswerStatus::NoTeam,
        }
    }
}

/// The structured answer to one [`crate::TeamQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct TeamAnswer {
    /// Correlation id copied from the query.
    pub id: Option<u64>,
    /// Outcome category.
    pub status: AnswerStatus,
    /// Relation the query ran under.
    pub kind: CompatibilityKind,
    /// Solver label ("LCMD", "EXHAUSTIVE", …).
    pub algorithm: String,
    /// Team member user ids (ascending; empty unless `status == ok`).
    pub members: Vec<usize>,
    /// Number of members.
    pub cardinality: usize,
    /// Team diameter under the relation's distance, when defined.
    pub diameter: Option<u32>,
    /// In-engine latency of this query, in microseconds.
    pub micros: u64,
    /// Slice of `micros` spent building relation state (matrix build, row
    /// computations) or blocked on another query's in-flight matrix build.
    pub build_micros: u64,
    /// `true` iff this query performed no build work itself: everything it
    /// touched was resident, or it only waited on a build another query was
    /// running. Misses therefore equal build events exactly.
    pub cache_hit: bool,
    /// Objective label echoed from the query (`None` when the query named
    /// no objective — the field is then absent on the wire, keeping legacy
    /// answers byte-identical).
    pub objective: Option<String>,
    /// Objective score of the team: total milli-synergy for the synergy
    /// objective, the minimised diameter for the constrained one. `None`
    /// for the default objective and for unsolved queries.
    pub score: Option<u64>,
}

impl TeamAnswer {
    /// Zeroes the latency fields (`micros`, `build_micros`), the only
    /// run-dependent part of an answer. The protocol's `timing: false`
    /// option applies this so the same warm query stream yields
    /// byte-identical JSONL on every transport and run.
    pub fn strip_timing(&mut self) {
        self.micros = 0;
        self.build_micros = 0;
    }
}

impl Serialize for TeamAnswer {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::new();
        if let Some(id) = self.id {
            m.push(("id".to_string(), Value::UInt(id)));
        }
        m.push((
            "status".to_string(),
            Value::Str(self.status.label().to_string()),
        ));
        m.push((
            "kind".to_string(),
            Value::Str(self.kind.label().to_string()),
        ));
        m.push(("algorithm".to_string(), Value::Str(self.algorithm.clone())));
        m.push(("members".to_string(), self.members.to_value()));
        m.push((
            "cardinality".to_string(),
            Value::UInt(self.cardinality as u64),
        ));
        m.push(("diameter".to_string(), self.diameter.to_value()));
        m.push(("micros".to_string(), Value::UInt(self.micros)));
        m.push(("build_micros".to_string(), Value::UInt(self.build_micros)));
        m.push(("cache_hit".to_string(), Value::Bool(self.cache_hit)));
        // Objective fields appear only for objective-carrying queries, so
        // legacy (no-objective) answers stay byte-identical.
        if let Some(objective) = &self.objective {
            m.push(("objective".to_string(), Value::Str(objective.clone())));
            m.push(("score".to_string(), self.score.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for TeamAnswer {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let field = |key: &str| v.get(key);
        let status_label = field("status")
            .and_then(Value::as_str)
            .ok_or_else(|| SerdeError::custom("answer is missing `status`"))?;
        let status = AnswerStatus::parse(status_label)
            .ok_or_else(|| SerdeError::custom(format!("unknown status `{status_label}`")))?;
        let kind_label = field("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| SerdeError::custom("answer is missing `kind`"))?;
        let kind = CompatibilityKind::parse(kind_label)
            .ok_or_else(|| SerdeError::custom(format!("unknown kind `{kind_label}`")))?;
        let members = match field("members") {
            Some(m) => Vec::<usize>::from_value(m)?,
            None => Vec::new(),
        };
        Ok(TeamAnswer {
            id: field("id").and_then(Value::as_u64),
            status,
            kind,
            algorithm: field("algorithm")
                .and_then(Value::as_str)
                .unwrap_or("LCMD")
                .to_string(),
            cardinality: field("cardinality")
                .and_then(Value::as_u64)
                .map(|c| c as usize)
                .unwrap_or(members.len()),
            members,
            diameter: match field("diameter") {
                Some(Value::Null) | None => None,
                Some(d) => Some(u32::from_value(d)?),
            },
            micros: field("micros").and_then(Value::as_u64).unwrap_or(0),
            build_micros: field("build_micros").and_then(Value::as_u64).unwrap_or(0),
            cache_hit: matches!(field("cache_hit"), Some(Value::Bool(true))),
            objective: field("objective")
                .and_then(Value::as_str)
                .map(str::to_string),
            score: field("score").and_then(Value::as_u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_round_trips() {
        let a = TeamAnswer {
            id: Some(3),
            status: AnswerStatus::Ok,
            kind: CompatibilityKind::Spo,
            algorithm: "LCMD".to_string(),
            members: vec![1, 5, 9],
            cardinality: 3,
            diameter: Some(2),
            micros: 120,
            build_micros: 40,
            cache_hit: true,
            objective: None,
            score: None,
        };
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"kind\":\"SPO\""));
        assert!(
            !json.contains("objective"),
            "objective-less answers must omit the objective fields: {json}"
        );
        let back: TeamAnswer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // Objective-carrying answers round-trip label and score.
        let scored = TeamAnswer {
            objective: Some("synergy".to_string()),
            score: Some(4500),
            ..a
        };
        let json = serde_json::to_string(&scored).unwrap();
        assert!(json.contains("\"objective\":\"synergy\""));
        assert!(json.contains("\"score\":4500"));
        let back: TeamAnswer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scored);
    }

    #[test]
    fn statuses_round_trip() {
        for s in [
            AnswerStatus::Ok,
            AnswerStatus::NoTeam,
            AnswerStatus::Uncoverable,
            AnswerStatus::BudgetExceeded,
        ] {
            assert_eq!(AnswerStatus::parse(s.label()), Some(s));
        }
        assert_eq!(AnswerStatus::parse("bogus"), None);
    }

    #[test]
    fn error_mapping() {
        assert_eq!(
            AnswerStatus::from_error(&TfsnError::NoCompatibleTeam),
            AnswerStatus::NoTeam
        );
        assert_eq!(
            AnswerStatus::from_error(&TfsnError::SearchBudgetExceeded),
            AnswerStatus::BudgetExceeded
        );
    }
}
