//! The query type of the serving layer and its wire format.
//!
//! On the wire a query is one JSON object per line (JSONL):
//!
//! ```json
//! {"id": 7, "kind": "SPA", "algorithm": "LCMD", "task": [3, 19, 4]}
//! ```
//!
//! * `task` (required) — skill ids to cover.
//! * `kind` (optional, default `"SPA"`) — compatibility relation label.
//! * `algorithm` (optional, default `"LCMD"`) — greedy policy label, or
//!   `"EXHAUSTIVE"` for the exact solver.
//! * `id` (optional) — opaque correlation id echoed in the answer.
//! * `objective` (optional) — team objective: the label `"min_team"`,
//!   `"synergy"` or `"constrained"`, or an object such as
//!   `{"kind": "constrained", "include": [3, 9], "max_size": 4,
//!   "max_distance": 3}`. Absent means the default min-diameter objective
//!   and leaves the answer byte-identical to the pre-objective protocol.
//! * `max_seeds`, `skill_degree_cap`, `random_seed` (optional) — greedy
//!   tuning overrides.
//!
//! The serde impls are hand-written (rather than derived) so the wire format
//! uses the paper's short labels instead of Rust enum structure.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use tfsn_core::compat::CompatibilityKind;
use tfsn_core::team::greedy::GreedyConfig;
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::{Objective, Solver};

/// One team-formation query against a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamQuery {
    /// Opaque correlation id echoed in the answer.
    pub id: Option<u64>,
    /// Skill ids the team must cover.
    pub task: Vec<usize>,
    /// Compatibility relation to use.
    pub kind: CompatibilityKind,
    /// How to solve the query.
    pub solver: Solver,
    /// Team objective (`None` = the default min-diameter objective; the
    /// wire format then stays byte-identical to the pre-objective
    /// protocol).
    pub objective: Option<Objective>,
}

impl TeamQuery {
    /// A query with the default relation (SPA) and solver (greedy LCMD).
    pub fn new(task: impl IntoIterator<Item = usize>) -> Self {
        TeamQuery {
            id: None,
            task: task.into_iter().collect(),
            kind: CompatibilityKind::Spa,
            solver: Solver::default_greedy(),
            objective: None,
        }
    }

    /// Sets the correlation id.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Sets the compatibility relation.
    pub fn with_kind(mut self, kind: CompatibilityKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the solver.
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the team objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = Some(objective);
        self
    }
}

/// Serializes an [`Objective`] to its wire form: a bare label for the
/// parameterless objectives, an object (`kind` + constraint fields, `None`s
/// omitted) for the constrained one.
pub fn objective_to_value(objective: &Objective) -> Value {
    match objective {
        Objective::MinTeam | Objective::Synergy => Value::Str(objective.label().to_string()),
        Objective::Constrained {
            include,
            max_size,
            max_distance,
        } => {
            let mut m: Vec<(String, Value)> =
                vec![("kind".to_string(), Value::Str("constrained".to_string()))];
            if !include.is_empty() {
                m.push(("include".to_string(), include.to_value()));
            }
            if let Some(k) = max_size {
                m.push(("max_size".to_string(), Value::UInt(*k as u64)));
            }
            if let Some(d) = max_distance {
                m.push(("max_distance".to_string(), Value::UInt(u64::from(*d))));
            }
            Value::Map(m)
        }
    }
}

/// Parses the wire form of an [`Objective`]: a string label
/// (`"min_team"`, `"synergy"`, `"constrained"`) or an object carrying a
/// `kind` label plus the constrained objective's `include` / `max_size` /
/// `max_distance` fields. Unknown specs are echoed back in the error so the
/// protocol layer can surface them in a typed `bad_request`.
pub fn objective_from_value(v: &Value) -> Result<Objective, SerdeError> {
    let parse_label = |label: &str| match label.to_ascii_lowercase().as_str() {
        "min_team" => Some(Objective::MinTeam),
        "synergy" => Some(Objective::Synergy),
        "constrained" => Some(Objective::Constrained {
            include: Vec::new(),
            max_size: None,
            max_distance: None,
        }),
        _ => None,
    };
    match v {
        Value::Str(label) => parse_label(label).ok_or_else(|| {
            SerdeError::custom(format!(
                "unknown objective `{label}` (expected min_team, synergy, or constrained)"
            ))
        }),
        Value::Map(map) => {
            let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let kind_label = field("kind").and_then(Value::as_str).ok_or_else(|| {
                SerdeError::custom(
                    "objective object must carry a string `kind` \
                         (min_team, synergy, or constrained)",
                )
            })?;
            let base = parse_label(kind_label).ok_or_else(|| {
                SerdeError::custom(format!(
                    "unknown objective kind `{kind_label}` (expected min_team, synergy, or constrained)"
                ))
            })?;
            let Objective::Constrained { .. } = base else {
                // The parameterless objectives accept (and ignore) no
                // constraint fields; reject them loudly rather than letting
                // a misplaced `max_size` silently do nothing.
                for (k, _) in map {
                    if k != "kind" {
                        return Err(SerdeError::custom(format!(
                            "objective `{kind_label}` accepts no field `{k}` \
                             (constraints belong to the constrained objective)"
                        )));
                    }
                }
                return Ok(base);
            };
            let include = match field("include") {
                Some(Value::Null) | None => Vec::new(),
                Some(v) => Vec::<usize>::from_value(v)
                    .map_err(|e| SerdeError::custom(format!("objective field `include`: {e}")))?,
            };
            let max_size =
                match field("max_size") {
                    Some(Value::Null) | None => None,
                    Some(v) => Some(usize::from_value(v).map_err(|e| {
                        SerdeError::custom(format!("objective field `max_size`: {e}"))
                    })?),
                };
            let max_distance = match field("max_distance") {
                Some(Value::Null) | None => None,
                Some(v) => Some(u32::from_value(v).map_err(|e| {
                    SerdeError::custom(format!("objective field `max_distance`: {e}"))
                })?),
            };
            Ok(Objective::Constrained {
                include,
                max_size,
                max_distance,
            })
        }
        _ => Err(SerdeError::custom(
            "field `objective` must be a string label or an object",
        )),
    }
}

impl Serialize for TeamQuery {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = Vec::new();
        if let Some(id) = self.id {
            m.push(("id".to_string(), Value::UInt(id)));
        }
        m.push((
            "kind".to_string(),
            Value::Str(self.kind.label().to_string()),
        ));
        match &self.solver {
            Solver::Greedy { algorithm, config } => {
                m.push((
                    "algorithm".to_string(),
                    Value::Str(algorithm.label().to_string()),
                ));
                let defaults = GreedyConfig::default();
                if config.max_seeds != defaults.max_seeds {
                    m.push(("max_seeds".to_string(), config.max_seeds.to_value()));
                }
                if config.skill_degree_cap != defaults.skill_degree_cap {
                    m.push((
                        "skill_degree_cap".to_string(),
                        config.skill_degree_cap.to_value(),
                    ));
                }
                if config.random_seed != defaults.random_seed {
                    m.push(("random_seed".to_string(), Value::UInt(config.random_seed)));
                }
            }
            Solver::Exhaustive => {
                m.push((
                    "algorithm".to_string(),
                    Value::Str("EXHAUSTIVE".to_string()),
                ));
            }
        }
        if let Some(objective) = &self.objective {
            m.push(("objective".to_string(), objective_to_value(objective)));
        }
        m.push(("task".to_string(), self.task.to_value()));
        Value::Map(m)
    }
}

impl Deserialize for TeamQuery {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let map = v
            .as_map()
            .ok_or_else(|| SerdeError::custom("query must be a JSON object"))?;
        let field = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);

        let task: Vec<usize> = match field("task") {
            Some(t) => Vec::<usize>::from_value(t)
                .map_err(|e| SerdeError::custom(format!("field `task`: {e}")))?,
            None => return Err(SerdeError::custom("query is missing required field `task`")),
        };

        let id =
            match field("id") {
                Some(Value::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    SerdeError::custom("field `id` must be a non-negative integer")
                })?),
            };

        let kind = match field("kind") {
            None => CompatibilityKind::Spa,
            Some(v) => {
                let label = v
                    .as_str()
                    .ok_or_else(|| SerdeError::custom("field `kind` must be a string label"))?;
                CompatibilityKind::parse(label).ok_or_else(|| {
                    SerdeError::custom(format!(
                        "unknown compatibility kind `{label}` (expected one of DPE, SPA, SPM, SPO, SBPH, SBP, NNE)"
                    ))
                })?
            }
        };

        let algorithm_label = match field("algorithm") {
            None => "LCMD".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| SerdeError::custom("field `algorithm` must be a string label"))?
                .to_ascii_uppercase(),
        };
        let solver = if algorithm_label == "EXHAUSTIVE" {
            Solver::Exhaustive
        } else {
            let algorithm = TeamAlgorithm::parse(&algorithm_label).ok_or_else(|| {
                SerdeError::custom(format!(
                    "unknown algorithm `{algorithm_label}` (expected LCMD, LCMC, RFMD, RFMC, RANDOM, or EXHAUSTIVE)"
                ))
            })?;
            let mut config = GreedyConfig::default();
            if let Some(v) = field("max_seeds") {
                config.max_seeds = Option::<usize>::from_value(v)
                    .map_err(|e| SerdeError::custom(format!("field `max_seeds`: {e}")))?;
            }
            if let Some(v) = field("skill_degree_cap") {
                config.skill_degree_cap = Option::<usize>::from_value(v)
                    .map_err(|e| SerdeError::custom(format!("field `skill_degree_cap`: {e}")))?;
            }
            if let Some(v) = field("random_seed") {
                config.random_seed = u64::from_value(v)
                    .map_err(|e| SerdeError::custom(format!("field `random_seed`: {e}")))?;
            }
            Solver::Greedy { algorithm, config }
        };

        let objective = match field("objective") {
            Some(Value::Null) | None => None,
            Some(v) => Some(
                objective_from_value(v)
                    .map_err(|e| SerdeError::custom(format!("field `objective`: {e}")))?,
            ),
        };

        Ok(TeamQuery {
            id,
            task,
            kind,
            solver,
            objective,
        })
    }
}

/// Why a [`QueryReader`] (or any JSONL record stream) failed to yield a
/// record. `Truncated` is the interesting variant: a final line with no
/// trailing newline that does not parse is a chopped record — a partial
/// upload or a crash mid-write — and callers get the byte offset where the
/// partial record starts so they can resume or truncate there. (A final
/// line without a newline that *does* parse is accepted; hand-written files
/// routinely omit the last newline.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryReadError {
    /// A line was not a valid record.
    Parse {
        /// 1-based line number of the offending line.
        lineno: usize,
        /// The parse error.
        detail: String,
    },
    /// The input ended mid-record: the final line had no trailing newline
    /// and did not parse as a complete record.
    Truncated {
        /// 1-based line number of the partial record.
        lineno: usize,
        /// Byte offset (from the start of the input) where the partial
        /// record begins — the safe truncation/resume point.
        offset: u64,
        /// The parse error the partial record produced.
        detail: String,
    },
    /// The underlying reader failed.
    Io {
        /// 1-based line number being read when the reader failed.
        lineno: usize,
        /// The I/O error.
        detail: String,
    },
}

impl std::fmt::Display for QueryReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryReadError::Parse { lineno, detail } => write!(f, "line {lineno}: {detail}"),
            QueryReadError::Truncated {
                lineno,
                offset,
                detail,
            } => write!(
                f,
                "line {lineno}: input truncated at byte {offset}: final record has no \
                 trailing newline and is not complete ({detail})"
            ),
            QueryReadError::Io { lineno, detail } => {
                write!(f, "line {lineno}: read error: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryReadError {}

/// An incremental JSONL query reader: one [`TeamQuery`] per input line,
/// blank lines and `#` comments skipped, errors carrying the 1-based line
/// number. Unlike collecting the whole input up front, iterating lets the
/// serving layer stream bounded chunks through the engine — a million-query
/// file never holds all queries (plus their answers) in memory at once.
#[derive(Debug)]
pub struct QueryReader<R> {
    reader: R,
    line: String,
    lineno: usize,
    offset: u64,
    done: bool,
}

impl<R: std::io::BufRead> QueryReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        QueryReader {
            reader,
            line: String::new(),
            lineno: 0,
            offset: 0,
            done: false,
        }
    }

    /// The 1-based number of the last line yielded (0 before the first).
    pub fn line_number(&self) -> usize {
        self.lineno
    }

    /// Bytes consumed from the input so far (through the end of the last
    /// line read).
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }
}

impl<R: std::io::BufRead> Iterator for QueryReader<R> {
    type Item = Result<TeamQuery, QueryReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            self.lineno += 1;
            let line_start = self.offset;
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(n) => self.offset += n as u64,
                Err(e) => {
                    // Fuse on read failures: a persistent I/O error (dying
                    // disk) would otherwise make callers that skip errors
                    // retry the same read forever. (Parse errors do NOT
                    // fuse — later lines are still readable.)
                    self.done = true;
                    return Some(Err(QueryReadError::Io {
                        lineno: self.lineno,
                        detail: e.to_string(),
                    }));
                }
            }
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let lineno = self.lineno;
            return Some(serde_json::from_str(trimmed).map_err(|e| {
                if self.line.ends_with('\n') {
                    QueryReadError::Parse {
                        lineno,
                        detail: e.to_string(),
                    }
                } else {
                    // No trailing newline and no parse: the input was
                    // chopped mid-record (partial upload, crash mid-write).
                    QueryReadError::Truncated {
                        lineno,
                        offset: line_start,
                        detail: e.to_string(),
                    }
                }
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_streams_queries_and_numbers_errors() {
        let input = "{\"task\": [1]}\n\n# comment\n{\"task\": [2, 3]}\nnot-json\n";
        let mut reader = QueryReader::new(std::io::Cursor::new(input));
        assert_eq!(reader.next().unwrap().unwrap().task, vec![1]);
        assert_eq!(reader.next().unwrap().unwrap().task, vec![2, 3]);
        assert_eq!(reader.line_number(), 4);
        let err = reader.next().unwrap().unwrap_err();
        assert!(
            matches!(err, QueryReadError::Parse { lineno: 5, .. }),
            "got: {err:?}"
        );
        assert!(err.to_string().starts_with("line 5:"), "got: {err}");
        assert!(reader.next().is_none());
    }

    #[test]
    fn truncated_final_record_is_typed_with_byte_offset() {
        // The final line is chopped mid-record and has no trailing newline:
        // the reader reports a typed truncation carrying the byte offset
        // where the partial record starts.
        let good = "{\"task\": [1]}\n";
        let input = format!("{good}{{\"task\": [2, ");
        let mut reader = QueryReader::new(std::io::Cursor::new(input));
        assert_eq!(reader.next().unwrap().unwrap().task, vec![1]);
        let err = reader.next().unwrap().unwrap_err();
        match &err {
            QueryReadError::Truncated { lineno, offset, .. } => {
                assert_eq!(*lineno, 2);
                assert_eq!(*offset, good.len() as u64);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("truncated at byte 14"), "got: {msg}");

        // A final line without a newline that IS complete still parses —
        // hand-written files routinely omit the last newline.
        let mut reader = QueryReader::new(std::io::Cursor::new("{\"task\": [7]}"));
        assert_eq!(reader.next().unwrap().unwrap().task, vec![7]);
        assert!(reader.next().is_none());

        // And a malformed line WITH a newline stays a plain parse error.
        let mut reader = QueryReader::new(std::io::Cursor::new("{\"task\": [2, \n"));
        assert!(matches!(
            reader.next().unwrap().unwrap_err(),
            QueryReadError::Parse { lineno: 1, .. }
        ));
    }

    #[test]
    fn minimal_query_parses_with_defaults() {
        let q: TeamQuery = serde_json::from_str(r#"{"task": [1, 2, 3]}"#).unwrap();
        assert_eq!(q.task, vec![1, 2, 3]);
        assert_eq!(q.kind, CompatibilityKind::Spa);
        assert_eq!(q.solver.label(), "LCMD");
        assert_eq!(q.id, None);
    }

    #[test]
    fn full_query_round_trips() {
        let json =
            r#"{"id": 9, "kind": "sbph", "algorithm": "rfmc", "max_seeds": 7, "task": [0, 4]}"#;
        let q: TeamQuery = serde_json::from_str(json).unwrap();
        assert_eq!(q.id, Some(9));
        assert_eq!(q.kind, CompatibilityKind::Sbph);
        match &q.solver {
            Solver::Greedy { algorithm, config } => {
                assert_eq!(algorithm.label(), "RFMC");
                assert_eq!(config.max_seeds, Some(7));
            }
            other => panic!("unexpected solver {other:?}"),
        }
        let back: TeamQuery = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn exhaustive_solver_parses() {
        let q: TeamQuery =
            serde_json::from_str(r#"{"task": [1], "algorithm": "EXHAUSTIVE", "kind": "NNE"}"#)
                .unwrap();
        assert_eq!(q.solver, Solver::Exhaustive);
        assert_eq!(q.kind, CompatibilityKind::Nne);
        let back: TeamQuery = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn objective_specs_round_trip() {
        // Absent objective parses to None and stays absent on the wire.
        let q: TeamQuery = serde_json::from_str(r#"{"task": [1]}"#).unwrap();
        assert_eq!(q.objective, None);
        assert!(!serde_json::to_string(&q).unwrap().contains("objective"));
        // Every variant round-trips through its wire form.
        for objective in [
            Objective::MinTeam,
            Objective::Synergy,
            Objective::Constrained {
                include: vec![],
                max_size: None,
                max_distance: None,
            },
            Objective::Constrained {
                include: vec![3, 9],
                max_size: Some(4),
                max_distance: Some(3),
            },
        ] {
            let q = TeamQuery::new([1, 2]).with_objective(objective.clone());
            let json = serde_json::to_string(&q).unwrap();
            let back: TeamQuery = serde_json::from_str(&json).unwrap();
            assert_eq!(back.objective, Some(objective), "wire: {json}");
            assert_eq!(back, q);
        }
        // The string and object spellings parse identically.
        let s: TeamQuery =
            serde_json::from_str(r#"{"task": [1], "objective": "synergy"}"#).unwrap();
        let o: TeamQuery =
            serde_json::from_str(r#"{"task": [1], "objective": {"kind": "SYNERGY"}}"#).unwrap();
        assert_eq!(s.objective, Some(Objective::Synergy));
        assert_eq!(s.objective, o.objective);
    }

    #[test]
    fn objective_errors_echo_the_offending_spec() {
        let err =
            serde_json::from_str::<TeamQuery>(r#"{"task": [1], "objective": "densest_subgraph"}"#)
                .unwrap_err()
                .to_string();
        assert!(err.contains("densest_subgraph"), "got: {err}");
        assert!(err.contains("objective"), "got: {err}");
        let err = serde_json::from_str::<TeamQuery>(
            r#"{"task": [1], "objective": {"kind": "nope", "max_size": 3}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("nope"), "got: {err}");
        // Constraint fields on a parameterless objective are rejected, not
        // silently ignored.
        let err = serde_json::from_str::<TeamQuery>(
            r#"{"task": [1], "objective": {"kind": "synergy", "max_size": 3}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("max_size"), "got: {err}");
        // Non-string, non-object specs are rejected.
        assert!(serde_json::from_str::<TeamQuery>(r#"{"task": [1], "objective": 7}"#).is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(serde_json::from_str::<TeamQuery>(r#"{"kind": "SPA"}"#)
            .unwrap_err()
            .to_string()
            .contains("task"));
        assert!(
            serde_json::from_str::<TeamQuery>(r#"{"task": [], "kind": "XXX"}"#)
                .unwrap_err()
                .to_string()
                .contains("XXX")
        );
        assert!(
            serde_json::from_str::<TeamQuery>(r#"{"task": [], "algorithm": "nope"}"#)
                .unwrap_err()
                .to_string()
                .contains("NOPE")
        );
    }
}
