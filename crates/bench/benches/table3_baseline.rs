//! Bench for experiment E4 (paper Table 3): the unsigned RarestFirst
//! baseline and the compatibility audit of its teams.
//!
//! Prints the regenerated Table 3 at smoke scale, then measures the baseline
//! solver and the audit on a scaled Epinions emulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use signed_graph::transform::{to_unsigned, UnsignedTransform};
use std::hint::black_box;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::team::baseline::{rarest_first, unsigned_baseline_compatibility};
use tfsn_experiments::table3;
use tfsn_skills::taskgen::random_coverable_tasks;

fn bench_table3(c: &mut Criterion) {
    let report = table3::run(&tfsn_bench::util::preamble_config());
    println!(
        "\n=== Table 3 (regenerated, smoke scale) ===\n{}",
        report.render()
    );

    let dataset = tfsn_datasets::epinions(0.03);
    let tasks = random_coverable_tasks(&dataset.skills, 5, 20, 7);
    let ignore = to_unsigned(&dataset.graph, UnsignedTransform::IgnoreSigns);
    let engine = EngineConfig::default();
    let nne =
        CompatibilityMatrix::build_parallel(&dataset.graph, CompatibilityKind::Nne, &engine, 4);

    let mut group = c.benchmark_group("table3");
    group.sample_size(20);
    group.bench_function("rarest_first_single_task", |b| {
        b.iter(|| black_box(rarest_first(&ignore, &dataset.skills, &tasks[0])))
    });
    for transform in [
        UnsignedTransform::IgnoreSigns,
        UnsignedTransform::DeleteNegative,
    ] {
        group.bench_with_input(
            BenchmarkId::new("baseline_audit_20_tasks", transform.label()),
            &transform,
            |b, &transform| {
                b.iter(|| {
                    black_box(unsigned_baseline_compatibility(
                        &dataset.graph,
                        &dataset.skills,
                        &tasks,
                        transform,
                        &nne,
                    ))
                })
            },
        );
    }
    group.bench_function("unsigned_transform", |b| {
        b.iter(|| {
            black_box(to_unsigned(
                &dataset.graph,
                UnsignedTransform::DeleteNegative,
            ))
        })
    });
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_table3
}
criterion_main!(benches);
