//! Engine serving throughput: cold per-query recomputation (what the
//! one-shot experiment binaries effectively did — rebuild the compatibility
//! matrix for every query) versus warm-cache batch serving through
//! `tfsn-engine`.
//!
//! Prints an explicit cold/warm comparison per SP-family relation before the
//! criterion measurements; the acceptance bar is a ≥5× advantage for the
//! warm path, which in practice is orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use tfsn_core::compat::CompatibilityKind;
use tfsn_engine::{BatchOptions, Deployment, Engine, EngineOptions, StorePolicy, TeamQuery};

/// A ~1.4k-node deployment (Epinions emulation at 5%).
fn deployment() -> Deployment {
    Deployment::from_dataset(tfsn_datasets::epinions(0.05))
}

fn queries(kind: CompatibilityKind, n: usize) -> Vec<TeamQuery> {
    (0..n)
        .map(|i| {
            TeamQuery::new([i % 11, (i * 3 + 1) % 11, (i * 5 + 2) % 11])
                .with_id(i as u64)
                .with_kind(kind)
        })
        .collect()
}

/// One query served cold: a fresh engine, so the matrix is rebuilt — the
/// per-call cost of the pre-engine architecture.
fn cold_query_seconds(deployment: &Deployment, kind: CompatibilityKind) -> f64 {
    let q = queries(kind, 1).remove(0);
    let start = Instant::now();
    let engine = Engine::new(deployment.clone());
    black_box(engine.query(&q));
    start.elapsed().as_secs_f64()
}

/// Mean per-query time of a warm batch.
fn warm_query_seconds(engine: &Engine, kind: CompatibilityKind, n: usize) -> f64 {
    let batch = queries(kind, n);
    let start = Instant::now();
    black_box(engine.batch(&batch, &BatchOptions::default()));
    start.elapsed().as_secs_f64() / n as f64
}

fn bench_engine_throughput(c: &mut Criterion) {
    let deployment = deployment();
    println!(
        "\n=== engine_throughput preamble: {} ({} users, {} edges) ===",
        deployment.name(),
        deployment.user_count(),
        deployment.graph().edge_count()
    );

    // Explicit cold vs warm comparison for the SP family.
    let engine = Engine::new(deployment.clone());
    engine.warm(&[
        CompatibilityKind::Spa,
        CompatibilityKind::Spm,
        CompatibilityKind::Spo,
    ]);
    for kind in [
        CompatibilityKind::Spa,
        CompatibilityKind::Spm,
        CompatibilityKind::Spo,
    ] {
        let cold = cold_query_seconds(&deployment, kind);
        let warm = warm_query_seconds(&engine, kind, 256);
        println!(
            "{kind}: cold per-query {:.1} ms, warm batch {:.3} ms/query -> {:.0}x speedup",
            cold * 1e3,
            warm * 1e3,
            cold / warm.max(1e-12)
        );
        assert!(
            cold >= 5.0 * warm,
            "{kind}: warm serving must be >=5x faster than cold recomputation \
             (cold {cold:.4}s, warm {warm:.6}s)"
        );
    }

    // Criterion measurements.
    let mut group = c.benchmark_group("engine_cold_single_query");
    group.sample_size(5);
    group.bench_function(BenchmarkId::from_parameter("SPA"), |b| {
        b.iter(|| black_box(cold_query_seconds(&deployment, CompatibilityKind::Spa)))
    });
    group.finish();

    let warm_batch = queries(CompatibilityKind::Spa, 256);
    let mut group = c.benchmark_group("engine_warm_batch_256q");
    group.throughput(Throughput::Elements(warm_batch.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("SPA"), |b| {
        b.iter(|| black_box(engine.batch(&warm_batch, &BatchOptions::default())))
    });
    group.finish();

    // Thread scaling of the warm batch.
    let mut group = c.benchmark_group("engine_warm_batch_threads");
    group.throughput(Throughput::Elements(warm_batch.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(engine.batch(&warm_batch, &BatchOptions::with_threads(threads)))
                })
            },
        );
    }
    group.finish();

    // Row-mode serving: the tier that replaces the O(|V|²) matrix on huge
    // graphs. Criterion measures the steady state (rows resident under an
    // unbounded budget); the eviction-pressure case is a bounded one-shot
    // measurement below, because a thrashing LRU deliberately recomputes
    // rows every batch and would stretch a criterion group indefinitely.
    let row_engine = Engine::with_options(
        deployment.clone(),
        EngineOptions {
            policy: StorePolicy::rows(None),
            ..Default::default()
        },
    );
    row_engine.batch(&warm_batch, &BatchOptions::default()); // fill rows
    let mut group = c.benchmark_group("engine_row_mode_batch_256q");
    group.throughput(Throughput::Elements(warm_batch.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("resident"), |b| {
        b.iter(|| black_box(row_engine.batch(&warm_batch, &BatchOptions::default())))
    });
    group.finish();

    // One-shot eviction-pressure measurement: a small batch under a budget
    // of ~8 rows — the worst case (constant recomputation), printed for
    // comparison against the resident rate above. The greedy caps bound the
    // per-query candidate scan so the thrash stays measurable, not endless.
    let tight_engine = Engine::with_options(
        deployment.clone(),
        EngineOptions {
            policy: StorePolicy::rows(Some(
                8 * tfsn_core::compat::estimated_row_bytes(deployment.user_count()),
            )),
            ..Default::default()
        },
    );
    let bounded_greedy = tfsn_core::team::Solver::Greedy {
        algorithm: tfsn_core::team::policies::TeamAlgorithm::LCMD,
        config: tfsn_core::team::greedy::GreedyConfig {
            max_seeds: Some(2),
            skill_degree_cap: Some(8),
            random_seed: 1,
        },
    };
    let small_batch: Vec<TeamQuery> = queries(CompatibilityKind::Spa, 8)
        .into_iter()
        .map(|q| q.with_solver(bounded_greedy.clone()))
        .collect();
    let start = Instant::now();
    black_box(tight_engine.batch(&small_batch, &BatchOptions::default()));
    let secs = start.elapsed().as_secs_f64();
    let m = tight_engine.metrics();
    println!(
        "row-mode under an 8-row budget: {} queries in {:.3}s ({:.0} q/s), \
         {} row builds, {} evictions, {} resident rows, {} resident bytes \
         (same byte budget held {} unpacked 9-B/node rows before bit-packing)",
        small_batch.len(),
        secs,
        small_batch.len() as f64 / secs.max(1e-9),
        m.row_builds,
        m.row_evictions,
        m.resident_rows,
        m.resident_bytes,
        (8 * tfsn_core::compat::estimated_row_bytes(deployment.user_count()))
            / tfsn_bench::util::legacy_row_bytes(deployment.user_count()),
    );
    if m.row_evictions == 0 {
        // Informational, not an abort: the eviction invariant itself is
        // covered by tests; the bench only reports the thrash cost.
        println!("warning: the 8-row budget did not evict — workload touched too few rows");
    }
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_engine_throughput
}
criterion_main!(benches);
