//! Bench for experiment E1 (paper Table 1): dataset statistics.
//!
//! Prints the regenerated Table 1 at smoke scale, then measures the cost of
//! generating the Slashdot emulation and computing its statistics row.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfsn_datasets::{DatasetStats, PaperDataset};
use tfsn_experiments::table1;

fn bench_table1(c: &mut Criterion) {
    let report = table1::run(&tfsn_bench::util::preamble_config());
    println!(
        "\n=== Table 1 (regenerated, smoke scale) ===\n{}",
        report.render()
    );

    let slashdot = tfsn_datasets::slashdot();
    let mut group = c.benchmark_group("table1");
    group.bench_function("generate_slashdot_emulation", |b| {
        b.iter(|| black_box(tfsn_datasets::slashdot()))
    });
    group.bench_function("dataset_stats_slashdot", |b| {
        b.iter(|| black_box(DatasetStats::compute(&slashdot)))
    });
    group.bench_function("generate_epinions_2pct", |b| {
        b.iter(|| black_box(tfsn_datasets::epinions(0.02)))
    });
    group.bench_function("spec_scaling", |b| {
        b.iter(|| black_box(PaperDataset::Epinions.spec().scaled(0.5)))
    });
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_table1
}
criterion_main!(benches);
