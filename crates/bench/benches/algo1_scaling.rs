//! Ablation A2: scaling of Algorithm 1 (the signed BFS that counts positive
//! and negative shortest paths) with graph size, and of the full relation
//! matrix build, including the parallel builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use signed_graph::csr::CsrGraph;
use signed_graph::generators::{social_network, SocialNetworkConfig};
use signed_graph::NodeId;
use std::hint::black_box;
use tfsn_core::compat::sp::signed_bfs;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};

fn bench_algo1(c: &mut Criterion) {
    let sizes = [(1_000usize, 5_000usize), (4_000, 20_000), (16_000, 80_000)];

    let mut group = c.benchmark_group("algo1_signed_bfs_single_source");
    for (nodes, edges) in sizes {
        let g = social_network(&SocialNetworkConfig {
            nodes,
            edges,
            negative_fraction: 0.2,
            seed: 9,
            ..Default::default()
        });
        let csr = CsrGraph::from_graph(&g);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{edges}m")),
            &csr,
            |b, csr| b.iter(|| black_box(signed_bfs(csr, NodeId::new(0)))),
        );
    }
    group.finish();

    // Full SPA matrix: sequential vs parallel (4 threads).
    let g = social_network(&SocialNetworkConfig {
        nodes: 2_000,
        edges: 10_000,
        negative_fraction: 0.2,
        seed: 11,
        ..Default::default()
    });
    let engine = EngineConfig::default();
    let mut group = c.benchmark_group("algo1_full_matrix_2000n");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(CompatibilityMatrix::build_with_config(
                &g,
                CompatibilityKind::Spa,
                &engine,
            ))
        })
    });
    group.bench_function("parallel_4_threads", |b| {
        b.iter(|| {
            black_box(CompatibilityMatrix::build_parallel(
                &g,
                CompatibilityKind::Spa,
                &engine,
                4,
            ))
        })
    });
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_algo1
}
criterion_main!(benches);
