//! Bench for experiments E2/E3 (paper Table 2): building every compatibility
//! relation and deriving the compatible-pair statistics.
//!
//! Prints the regenerated Table 2 at smoke scale, then measures the cost of
//! materialising each relation on the full-size Slashdot emulation (the
//! dataset on which the paper computes every relation, including exact SBP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::skill_compat::SkillPairCompatibility;
use tfsn_experiments::table2;

fn bench_table2(c: &mut Criterion) {
    let report = table2::run(&tfsn_bench::util::preamble_config());
    println!(
        "\n=== Table 2 (regenerated, smoke scale) ===\n{}",
        report.render()
    );

    let dataset = tfsn_datasets::slashdot();
    let engine = EngineConfig::default();

    let mut group = c.benchmark_group("table2_relation_build_slashdot");
    for kind in [
        CompatibilityKind::Spa,
        CompatibilityKind::Spm,
        CompatibilityKind::Spo,
        CompatibilityKind::Sbph,
        CompatibilityKind::Sbp,
        CompatibilityKind::Nne,
    ] {
        if kind == CompatibilityKind::Sbp {
            group.sample_size(10);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(CompatibilityMatrix::build_with_config(
                        &dataset.graph,
                        kind,
                        &engine,
                    ))
                })
            },
        );
    }
    group.finish();

    // The derived Table 2 statistics given a prebuilt relation.
    let spo =
        CompatibilityMatrix::build_with_config(&dataset.graph, CompatibilityKind::Spo, &engine);
    let mut group = c.benchmark_group("table2_statistics");
    group.bench_function("compatible_pair_fraction", |b| {
        b.iter(|| black_box(spo.compatible_pair_fraction()))
    });
    group.bench_function("mean_compatible_distance", |b| {
        b.iter(|| black_box(spo.mean_compatible_distance()))
    });
    group.bench_function("skill_pair_compatibility", |b| {
        b.iter(|| {
            black_box(SkillPairCompatibility::from_rows(
                spo.rows(),
                &dataset.skills,
            ))
        })
    });
    group.bench_function("sbp_vs_sbph_disagreement", |b| {
        let sbph = CompatibilityMatrix::build_with_config(
            &dataset.graph,
            CompatibilityKind::Sbph,
            &engine,
        );
        b.iter(|| black_box(table2::disagreement_pct(&spo, &sbph)))
    });
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_table2
}
criterion_main!(benches);
