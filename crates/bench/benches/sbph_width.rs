//! Ablation A3: SBPH beam-width sensitivity — recall against exact SBP and
//! runtime as the number of retained prefixes per node grows.
//!
//! Prints the recall series (the data behind the ablation) before measuring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use signed_graph::csr::CsrGraph;
use std::hint::black_box;
use tfsn_core::compat::sbp::sbp_source;
use tfsn_core::compat::sbph::sbph_source;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};

fn bench_sbph_width(c: &mut Criterion) {
    let dataset = tfsn_datasets::slashdot();
    let graph = &dataset.graph;
    let csr = CsrGraph::from_graph(graph);

    // Recall of the heuristic against (length-bounded) exact SBP, per width.
    let engine = EngineConfig::default();
    let exact = CompatibilityMatrix::build_parallel(graph, CompatibilityKind::Sbp, &engine, 4);
    let exact_pairs = exact.compatible_pair_fraction();
    println!("\n=== SBPH width ablation (Slashdot emulation) ===");
    println!("exact SBP compatible-pair fraction: {:.4}", exact_pairs);
    for width in [1usize, 2, 4, 8] {
        let mut agree = 0u64;
        let mut claimed = 0u64;
        let n = graph.node_count();
        for u in 0..n {
            let row = sbph_source(graph, &csr, signed_graph::NodeId::new(u), width);
            for v in 0..n {
                if v != u && row.compatible[v] {
                    claimed += 1;
                    use tfsn_core::compat::Compatibility;
                    if exact.compatible(signed_graph::NodeId::new(u), signed_graph::NodeId::new(v))
                    {
                        agree += 1;
                    }
                }
            }
        }
        println!(
            "width {width}: claimed pair fraction {:.4}, agreement with exact {:.1}%",
            claimed as f64 / (n as f64 * (n as f64 - 1.0)),
            if claimed == 0 {
                100.0
            } else {
                100.0 * agree as f64 / claimed as f64
            }
        );
    }

    // Runtime per width (single source and full relation).
    let mut group = c.benchmark_group("sbph_single_source");
    for width in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                black_box(sbph_source(
                    graph,
                    &csr,
                    signed_graph::NodeId::new(0),
                    width,
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sbp_exact_single_source");
    group.sample_size(10);
    group.bench_function("bounded_len_12", |b| {
        b.iter(|| {
            black_box(sbp_source(
                graph,
                signed_graph::NodeId::new(0),
                Some(12),
                2_000_000,
            ))
        })
    });
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_sbph_width
}
criterion_main!(benches);
