//! Bench for experiments E5–E8 (paper Figure 2): the greedy team-formation
//! algorithms across compatibility relations and task sizes.
//!
//! Prints the regenerated Figure 2 panels at smoke scale, then measures the
//! greedy solver per (relation, algorithm) and per task size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::team::greedy::{solve_greedy, GreedyConfig};
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::TfsnInstance;
use tfsn_experiments::figure2;
use tfsn_skills::taskgen::random_coverable_tasks;

fn bench_figure2(c: &mut Criterion) {
    let report = figure2::run(&tfsn_bench::util::preamble_config());
    println!(
        "\n=== Figure 2 (regenerated, smoke scale) ===\n{}",
        report.render()
    );

    let dataset = tfsn_datasets::epinions(0.03);
    let instance = TfsnInstance::new(&dataset.graph, &dataset.skills);
    let engine = EngineConfig::default();
    let greedy_cfg = GreedyConfig {
        max_seeds: Some(40),
        skill_degree_cap: Some(64),
        ..Default::default()
    };

    // Panel (a)/(b): per relation × algorithm at k = 5.
    let tasks_k5 = random_coverable_tasks(&dataset.skills, 5, 10, 21);
    let mut group = c.benchmark_group("figure2_algorithms_k5");
    group.sample_size(10);
    for kind in [
        CompatibilityKind::Spa,
        CompatibilityKind::Spo,
        CompatibilityKind::Nne,
    ] {
        let comp = CompatibilityMatrix::build_parallel(&dataset.graph, kind, &engine, 4);
        for alg in [
            TeamAlgorithm::LCMD,
            TeamAlgorithm::LCMC,
            TeamAlgorithm::RANDOM,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), alg.label()),
                &alg,
                |b, &alg| {
                    b.iter(|| {
                        for task in &tasks_k5 {
                            black_box(solve_greedy(&instance, &comp, task, alg, &greedy_cfg).ok());
                        }
                    })
                },
            );
        }
    }
    group.finish();

    // Panel (c)/(d): LCMD across task sizes.
    let comp =
        CompatibilityMatrix::build_parallel(&dataset.graph, CompatibilityKind::Spo, &engine, 4);
    let mut group = c.benchmark_group("figure2_task_size_sweep_spo_lcmd");
    group.sample_size(10);
    for k in [2usize, 5, 10, 15, 20] {
        let tasks = random_coverable_tasks(&dataset.skills, k, 10, 100 + k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &tasks, |b, tasks| {
            b.iter(|| {
                for task in tasks {
                    black_box(
                        solve_greedy(&instance, &comp, task, TeamAlgorithm::LCMD, &greedy_cfg).ok(),
                    );
                }
            })
        });
    }
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_figure2
}
criterion_main!(benches);
