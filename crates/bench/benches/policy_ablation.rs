//! Ablation A1: skill-selection × user-selection policy combinations.
//!
//! The paper reports only the two winners (LCMD, LCMC) plus RANDOM; this
//! ablation also runs the rarest-first variants (RFMD, RFMC) to quantify how
//! much the skill policy matters relative to the user policy. Prints the
//! solved-rate / diameter series before measuring runtime per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfsn_core::compat::{CompatibilityKind, CompatibilityMatrix, EngineConfig};
use tfsn_core::team::greedy::{solve_greedy, GreedyConfig};
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::TfsnInstance;
use tfsn_experiments::figure2::run_workload;
use tfsn_experiments::ExperimentConfig;
use tfsn_skills::taskgen::random_coverable_tasks;

fn bench_policy_ablation(c: &mut Criterion) {
    let dataset = tfsn_datasets::epinions(0.03);
    let engine = EngineConfig::default();
    let comp =
        CompatibilityMatrix::build_parallel(&dataset.graph, CompatibilityKind::Spo, &engine, 4);
    let tasks = random_coverable_tasks(&dataset.skills, 5, 25, 33);
    let exp_cfg = ExperimentConfig {
        max_seeds: Some(40),
        skill_degree_cap: Some(64),
        ..ExperimentConfig::quick()
    };

    println!("\n=== Policy ablation (Epinions emulation @3%, SPO, k=5) ===");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "policy", "% solved", "diameter", "team size"
    );
    for alg in TeamAlgorithm::ALL {
        let outcome = run_workload(&dataset, &comp, &tasks, alg, &exp_cfg);
        println!(
            "{:<8} {:>10.1} {:>10.2} {:>10.2}",
            alg.label(),
            outcome.solved_pct,
            outcome.mean_diameter,
            outcome.mean_team_size
        );
    }

    let instance = TfsnInstance::new(&dataset.graph, &dataset.skills);
    let greedy_cfg = GreedyConfig {
        max_seeds: Some(40),
        skill_degree_cap: Some(64),
        ..Default::default()
    };
    let mut group = c.benchmark_group("policy_ablation_25_tasks");
    group.sample_size(10);
    for alg in TeamAlgorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| {
                for task in &tasks {
                    black_box(solve_greedy(&instance, &comp, task, alg, &greedy_cfg).ok());
                }
            })
        });
    }
    group.finish();
}

/// Short measurement profile so `cargo bench --workspace` finishes in
/// minutes; pass `--sample-size`/`--measurement-time` on the command line
/// for higher-precision runs.
fn short_profile() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short_profile();
    targets = bench_policy_ablation
}
criterion_main!(benches);
