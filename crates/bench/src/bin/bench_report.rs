//! `bench-report` — the cross-PR perf tracker.
//!
//! Criterion's output is human-oriented and vanishes with the terminal;
//! this binary runs the repo's key measurements with plain `Instant`
//! timing and writes one machine-readable JSON file with the median ns/op
//! per group, so the perf trajectory is tracked across PRs (the committed
//! `BENCH_PR3.json`) and CI uploads the smoke run as an artifact.
//!
//! Measured groups:
//!
//! * `figure2_greedy/<mix>/<kind>/<alg>/{masked,scalar,legacy}` — the
//!   greedy solver on a materialised relation through three paths: the
//!   word-parallel [`CandidateMask`] fast path, [`ScalarOnly`] (packed rows
//!   but scalar pair probes), and a reconstructed legacy matrix (unpacked
//!   9-bytes-per-node rows + scalar probes — the true pre-change baseline).
//!   The `<mix>` is `random` (figure2-style coverable tasks) or `popular`
//!   (tasks over the most-held skills, the growth-dominated regime). The
//!   derived `speedups` list (legacy / masked) is the PR's ≥2× acceptance
//!   measurement.
//! * `row_mode` — a budgeted row-tier engine serving a batch: measured
//!   resident rows and evictions under the byte budget, against the row
//!   capacity the unpacked 9-bytes-per-node layout had under the same
//!   budget (the ≥4× residency measurement).
//! * `service` — the transport-layer throughput: one `Service` with two
//!   named deployments behind the hand-rolled HTTP/1.1 front-end, hammered
//!   warm by 4 keep-alive client threads posting `/v1/batch` JSONL, against
//!   the same streams through the in-process CLI transport
//!   (`Service::stream_batch`). The `http_qps` figure is the PR 4
//!   acceptance number.
//! * `mutation` — live-update throughput. Since schema v8 each round is a
//!   *window* of edge mutations applied through `Engine::mutate_batch`
//!   (one write-order acquisition, one merged invalidation sweep, in-place
//!   row repair for the deltas `compat::repair` can prove) followed by a
//!   query burst against a single long-lived engine, against the naive
//!   alternative of rebuilding a fresh engine (and re-warming every
//!   relation) after every mutation — a server without incremental
//!   updates must stay serveable after each acknowledged write, so it
//!   cannot coalesce the window. The v3–v7 reports ran the same interleave
//!   with one-mutation windows (the PR 5 ≥5× acceptance number); the
//!   `speedup` figure is the PR 10 ≥8× one.
//! * `repair` — the row-repair micro-contrast behind that speedup
//!   (schema v8): a rows-mode engine with every `nne` row resident
//!   absorbing batches of sign flips patched in place by
//!   `compat::repair`, against recomputing the same rows from scratch.
//!   Reported per row repaired vs per row rebuilt.
//! * `replication_lag` — the follower-side win (schema v8): a WAL-backed
//!   primary absorbs a flappy mutation storm, a rows-resident follower
//!   replays it through batched `mutate_batch` windows, and the report
//!   carries the follower's row builds against the same log folded one
//!   record at a time with a read sweep after every record (what replay
//!   cost before batched windows).
//! * `objectives/<label>` — the objective-pluggable solver layer: one warm
//!   engine serving the same query workload under every team objective
//!   (`min_team` via the default objective-less path, `synergy`,
//!   `constrained`). Since schema v5 the report's `objectives` section
//!   carries each objective's solved count and a sample score — the PR 7
//!   end-to-end acceptance evidence.
//! * `durability/<policy>` — the WAL cost: the slashdot mutation
//!   interleave re-run with a write-ahead log attached under each fsync
//!   policy (`off`, `batch`, `always`), against the same interleave with no
//!   log. Since schema v6 the `durability` section carries per-policy wall
//!   clocks and overhead ratios vs the no-WAL baseline — the PR 8 `batch ≤
//!   1.15×` acceptance figure.
//! * `cluster` — the distributed-serving measurement (schema v7): the
//!   same warm batch storm (a) direct at one memory-budgeted server,
//!   (b) through `tfsn route` over one replica, and (c) through the
//!   router over two replicas with `--affinity` content hashing, where
//!   each replica's budgeted row cache holds only its share of the query
//!   working set — the ≥1.7× two-replica acceptance figure. Plus a
//!   mutation burst through the router measuring WAL-shipping replication
//!   catch-up on two live followers.
//! * `telemetry_overhead` — the cost of one telemetry `record()` call
//!   (three relaxed atomics), so the "histograms sit on the query hot path
//!   without a measurable cost" claim in `docs/OBSERVABILITY.md` stays a
//!   number, not an assertion.
//!
//! Since schema v4 each multi-sample group also carries p50/p95/p99 ns/op,
//! computed by feeding the per-iteration samples through the engine's own
//! log-bucketed [`LatencyHistogram`] (so the report eats the same ≤12.5%
//! bucket error budget as production telemetry), and the `service` section
//! carries the per-deployment warm query-latency summaries read back from
//! the engines via the `telemetry` protocol operation.
//!
//! Usage: `bench-report [--quick] [--output PATH]` — the default output is
//! `bench-report.local.json`; pass `--output BENCH_PR8.json` explicitly to
//! refresh the committed cross-PR artifact.
//!
//! [`CandidateMask`]: tfsn_core::team::CandidateMask
//! [`ScalarOnly`]: tfsn_core::compat::ScalarOnly
//! [`LatencyHistogram`]: tfsn_engine::telemetry::LatencyHistogram

use std::io::Write;
use std::time::Instant;

use serde::Serialize;
use signed_graph::NodeId;
use tfsn_core::compat::{
    estimated_row_bytes, Compatibility, CompatibilityKind, CompatibilityMatrix, EngineConfig,
    ScalarOnly, SourceCompatibility,
};
use tfsn_core::team::greedy::{solve_greedy, GreedyConfig};
use tfsn_core::team::policies::TeamAlgorithm;
use tfsn_core::team::{Solver, TfsnInstance};
use tfsn_engine::telemetry::{HistogramStats, LatencyHistogram};
use tfsn_engine::{BatchOptions, Deployment, Engine, EngineOptions, StorePolicy, TeamQuery};
use tfsn_skills::taskgen::random_coverable_tasks;

/// The pre-change resident representation, reconstructed for an honest
/// baseline: one unpacked `Vec<bool>` + `Vec<Option<u32>>` row per node
/// (9 bytes per node) and scalar pair probes only (no packed rows, so the
/// solver cannot use the candidate mask). Built from the packed matrix, so
/// the relation answered is bit-for-bit identical.
struct LegacyMatrix {
    kind: CompatibilityKind,
    rows: Vec<SourceCompatibility>,
}

impl LegacyMatrix {
    fn from_packed(matrix: &CompatibilityMatrix) -> Self {
        LegacyMatrix {
            kind: matrix.kind(),
            rows: matrix.rows().iter().map(|r| r.to_source()).collect(),
        }
    }
}

impl Compatibility for LegacyMatrix {
    fn kind(&self) -> CompatibilityKind {
        self.kind
    }

    fn node_count(&self) -> usize {
        self.rows.len()
    }

    fn compatible(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        self.rows
            .get(u.index())
            .map(|r| r.compatible.get(v.index()).copied().unwrap_or(false))
            .unwrap_or(false)
    }

    fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        self.rows
            .get(u.index())
            .and_then(|r| r.distance.get(v.index()).copied().flatten())
    }
}

/// One measured group: the median over `samples` timed iterations, each
/// performing `ops_per_iter` operations. Since schema v4, groups also
/// report ns/op percentiles where a finer-grained sampling exists —
/// per-iteration samples for the interleaved groups, per-request client
/// latencies for the HTTP storm — and `None` where only one aggregate
/// timing exists (a percentile would just restate the median).
#[derive(Debug, Serialize)]
struct Group {
    name: String,
    median_ns_per_op: u64,
    p50_ns_per_op: Option<u64>,
    p95_ns_per_op: Option<u64>,
    p99_ns_per_op: Option<u64>,
    ops_per_iter: u64,
    samples: usize,
}

/// One variant's timing out of [`measure_interleaved`]: the median plus
/// histogram-derived percentiles, all ns/op.
#[derive(Debug, Clone, Copy)]
struct Measured {
    median_ns_per_op: u64,
    p50_ns_per_op: Option<u64>,
    p95_ns_per_op: Option<u64>,
    p99_ns_per_op: Option<u64>,
}

/// ns/op percentiles over per-iteration samples, computed through the
/// engine's own log-bucketed [`LatencyHistogram`] rather than exact
/// order statistics — deliberately, so the committed report carries the
/// same ≤12.5% bucket error the production `/metrics` percentiles do.
fn percentiles_ns(samples_ns_per_op: &[u64]) -> [Option<u64>; 3] {
    if samples_ns_per_op.len() < 2 {
        return [None; 3];
    }
    let hist = LatencyHistogram::default();
    for &s in samples_ns_per_op {
        hist.record(s);
    }
    let snap = hist.snapshot();
    [0.50, 0.95, 0.99].map(|q| Some(snap.quantile(q)))
}

/// The row-tier residency measurement under a fixed byte budget.
#[derive(Debug, Serialize)]
struct RowModeReport {
    memory_budget_bytes: u64,
    nodes: u64,
    packed_row_bytes: u64,
    /// What one row cost before bit-packing: a `bool` plus an `Option<u32>`
    /// per node behind the `SourceCompatibility` header.
    legacy_row_bytes: u64,
    /// Rows the budget holds in the packed layout (budget / packed row).
    packed_capacity_rows: u64,
    /// Rows the same budget held in the legacy layout.
    legacy_capacity_rows: u64,
    /// Rows actually resident after the measured batch.
    resident_rows: u64,
    row_builds: u64,
    row_evictions: u64,
    /// `resident_rows / legacy_capacity_rows` — the ≥4× acceptance figure.
    residency_gain: f64,
}

/// The service-layer throughput measurement (see the module docs).
#[derive(Debug, Serialize)]
struct ServiceReport {
    /// The registry the one service instance served.
    deployments: Vec<String>,
    /// Concurrent HTTP client threads (each one keep-alive connection).
    client_threads: u64,
    /// `/v1/batch` requests per client.
    requests_per_client: u64,
    /// Queries per request body.
    queries_per_request: u64,
    /// Total queries answered over HTTP during the measured storm.
    total_queries: u64,
    /// Wall-clock seconds of the storm.
    wall_seconds: f64,
    /// Warm HTTP throughput, queries/second (the acceptance figure).
    http_qps: f64,
    /// The same per-client streams through `Service::stream_batch`
    /// directly (the CLI transport), same thread count — the HTTP framing
    /// overhead is the gap to this.
    inprocess_qps: f64,
    /// Per-deployment warm query-latency summaries (count, p50/p90/p99,
    /// max — all µs) read back from the engines' own telemetry via the
    /// `telemetry` protocol operation after both storms; covers every
    /// query the storms answered.
    query_stats: Vec<(String, HistogramStats)>,
}

/// The live-mutation throughput measurement (see the module docs).
#[derive(Debug, Serialize)]
struct MutationBenchReport {
    /// Deployment the interleave ran against.
    deployment: String,
    /// Relation kinds warmed and queried each round.
    kinds: Vec<String>,
    /// Mutation rounds (one window of sign flips + one query burst each).
    rounds: u64,
    /// Sign flips per window (schema v8; v3–v7 interleaves used 1). The
    /// live engine absorbs each window as one `mutate_batch`; the rebuild
    /// baseline pays one full rebuild per flip.
    mutations_per_round: u64,
    /// Queries answered after each window.
    queries_per_round: u64,
    /// Wall-clock of the incremental interleave (one live engine,
    /// per-kind invalidation).
    incremental_wall_seconds: f64,
    /// Mutate+query operations per second on the live engine.
    incremental_ops_per_second: f64,
    /// Wall-clock of the naive baseline: a fresh engine rebuilt and
    /// re-warmed after every mutation, same queries.
    rebuild_wall_seconds: f64,
    /// The baseline's operations per second.
    rebuild_ops_per_second: f64,
    /// Mutations applied on the live engine (sanity: equals `rounds`).
    mutations_applied: u64,
    /// Rows invalidated across the interleave.
    rows_invalidated: u64,
    /// Rows `compat::repair` patched in place instead of invalidating
    /// (schema v8) — the mechanism behind the speedup moving past 8×.
    rows_repaired: u64,
    /// `rebuild_wall_seconds / incremental_wall_seconds` — the ≥5×
    /// (PR 5) and ≥8× (PR 10) acceptance figure.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: &'static str,
    quick: bool,
    groups: Vec<Group>,
    /// `figure2_greedy` masked-over-scalar speedup per (kind, algorithm).
    speedups: Vec<(String, f64)>,
    row_mode: RowModeReport,
    service: ServiceReport,
    mutation: MutationBenchReport,
    repair: RepairBenchReport,
    replication_lag: ReplicationLagReport,
    objectives: ObjectiveBenchReport,
    durability: DurabilityBenchReport,
    cluster: ClusterBenchReport,
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Times the variants round-robin — one sample of each per round — so no
/// variant is measured wholesale in the cache state its predecessor left
/// behind (the matrices here are cache-sized; back-to-back blocks hand the
/// first-measured variant the cold samples). Returns the median and
/// percentile ns/op per variant.
fn measure_interleaved<const N: usize>(
    samples: usize,
    ops: u64,
    mut variants: [&mut dyn FnMut(); N],
) -> [Measured; N] {
    for v in variants.iter_mut() {
        v(); // warm-up round
    }
    let mut per_variant: [Vec<u64>; N] = std::array::from_fn(|_| Vec::with_capacity(samples));
    for _ in 0..samples {
        for (v, out) in variants.iter_mut().zip(per_variant.iter_mut()) {
            let start = Instant::now();
            v();
            out.push(start.elapsed().as_nanos() as u64 / ops.max(1));
        }
    }
    std::array::from_fn(|i| {
        let [p50, p95, p99] = percentiles_ns(&per_variant[i]);
        Measured {
            median_ns_per_op: median(per_variant[i].clone()),
            p50_ns_per_op: p50,
            p95_ns_per_op: p95,
            p99_ns_per_op: p99,
        }
    })
}

/// Tasks over the most-held skills: the growth-dominated regime, where a
/// skill's holder list (the greedy candidate set) has hundreds of users and
/// the per-candidate × per-member compatibility probes dominate — exactly
/// the loop the candidate mask collapses to one bit probe.
fn popular_tasks(
    skills: &tfsn_skills::assignment::SkillAssignment,
    k: usize,
    count: u64,
) -> Vec<tfsn_skills::task::Task> {
    use tfsn_skills::SkillId;
    let mut by_freq: Vec<usize> = (0..skills.skill_count()).collect();
    by_freq.sort_unstable_by_key(|&s| std::cmp::Reverse(skills.skill_frequency(SkillId::new(s))));
    let top: Vec<usize> = by_freq.into_iter().take(40).collect();
    (0..count)
        .map(|seed| {
            tfsn_skills::task::Task::new(
                (0..k).map(|i| SkillId::new(top[(seed as usize * 7 + i * 3) % top.len()])),
            )
        })
        .collect()
}

fn greedy_groups(quick: bool, groups: &mut Vec<Group>, speedups: &mut Vec<(String, f64)>) {
    let samples = if quick { 5 } else { 11 };
    let dataset = tfsn_datasets::epinions(0.1);
    let instance = TfsnInstance::new(&dataset.graph, &dataset.skills);
    let engine_cfg = EngineConfig::default();
    let greedy_cfg = GreedyConfig {
        max_seeds: Some(40),
        skill_degree_cap: Some(64),
        ..Default::default()
    };
    // Two task mixes: the figure2-style random coverable tasks (k = 5), and
    // popular-skill tasks (k = 12) where candidate filtering dominates.
    let workloads: Vec<(&str, Vec<tfsn_skills::task::Task>)> = vec![
        ("random", random_coverable_tasks(&dataset.skills, 5, 10, 21)),
        ("popular", popular_tasks(&dataset.skills, 12, 10)),
    ];
    let kinds: &[CompatibilityKind] = if quick {
        &[CompatibilityKind::Spa]
    } else {
        &[CompatibilityKind::Spa, CompatibilityKind::Nne]
    };
    for &kind in kinds {
        let comp = CompatibilityMatrix::build_parallel(&dataset.graph, kind, &engine_cfg, 4);
        let legacy_comp = LegacyMatrix::from_packed(&comp);
        for (mix, tasks) in &workloads {
            for alg in [TeamAlgorithm::LCMD, TeamAlgorithm::RFMD] {
                let solve_all = |comp: &dyn Compatibility| {
                    for task in tasks {
                        std::hint::black_box(
                            solve_greedy(&instance, comp, task, alg, &greedy_cfg).ok(),
                        );
                    }
                };
                let scalar_view = ScalarOnly(&comp);
                let [masked, scalar, legacy] = measure_interleaved(
                    samples,
                    tasks.len() as u64,
                    [
                        &mut || solve_all(&comp),
                        &mut || solve_all(&scalar_view),
                        &mut || solve_all(&legacy_comp),
                    ],
                );
                let label = format!("{mix}/{}/{}", kind.label(), alg.label());
                let speedup =
                    legacy.median_ns_per_op as f64 / masked.median_ns_per_op.max(1) as f64;
                eprintln!(
                    "figure2_greedy/{label}: masked {} ns/op, packed-scalar {} \
                     ns/op, legacy (pre-change) {} ns/op -> {speedup:.2}x vs pre-change",
                    masked.median_ns_per_op, scalar.median_ns_per_op, legacy.median_ns_per_op,
                );
                for (variant, m) in [("masked", masked), ("scalar", scalar), ("legacy", legacy)] {
                    groups.push(Group {
                        name: format!("figure2_greedy/{label}/{variant}"),
                        median_ns_per_op: m.median_ns_per_op,
                        p50_ns_per_op: m.p50_ns_per_op,
                        p95_ns_per_op: m.p95_ns_per_op,
                        p99_ns_per_op: m.p99_ns_per_op,
                        ops_per_iter: tasks.len() as u64,
                        samples,
                    });
                }
                speedups.push((label, speedup));
            }
        }
    }
}

use tfsn_bench::util::legacy_row_bytes;

fn row_mode_report(quick: bool, groups: &mut Vec<Group>) -> RowModeReport {
    let deployment = Deployment::from_dataset(tfsn_datasets::epinions(0.05));
    let nodes = deployment.user_count();
    let budget = 32 << 10; // 32 KiB per kind: a working set of ~10 packed rows
    let engine = Engine::with_options(
        deployment,
        EngineOptions {
            policy: StorePolicy::rows(Some(budget)),
            ..Default::default()
        },
    );
    let n_queries = if quick { 64 } else { 256 };
    // A bounded solver keeps the deliberately thrashing LRU measurable
    // (mirrors the eviction-pressure one-shot in `engine_throughput`).
    let bounded = Solver::Greedy {
        algorithm: TeamAlgorithm::LCMD,
        config: GreedyConfig {
            max_seeds: Some(2),
            skill_degree_cap: Some(8),
            random_seed: 1,
        },
    };
    let queries: Vec<TeamQuery> = (0..n_queries)
        .map(|i| {
            TeamQuery::new([i % 11, (i * 3 + 1) % 11, (i * 5 + 2) % 11])
                .with_id(i as u64)
                .with_kind(CompatibilityKind::Spa)
                .with_solver(bounded.clone())
        })
        .collect();
    let start = Instant::now();
    std::hint::black_box(engine.batch(&queries, &BatchOptions::default()));
    let elapsed = start.elapsed().as_nanos() as u64;
    groups.push(Group {
        name: "engine_row_mode_batch/SPA/32K-budget".to_string(),
        median_ns_per_op: elapsed / n_queries as u64,
        p50_ns_per_op: None,
        p95_ns_per_op: None,
        p99_ns_per_op: None,
        ops_per_iter: n_queries as u64,
        samples: 1,
    });

    let m = engine.metrics();
    let packed = estimated_row_bytes(nodes);
    let legacy = legacy_row_bytes(nodes);
    let legacy_capacity = (budget / legacy).max(1);
    let report = RowModeReport {
        memory_budget_bytes: budget as u64,
        nodes: nodes as u64,
        packed_row_bytes: packed as u64,
        legacy_row_bytes: legacy as u64,
        packed_capacity_rows: (budget / packed) as u64,
        legacy_capacity_rows: legacy_capacity as u64,
        resident_rows: m.resident_rows,
        row_builds: m.row_builds,
        row_evictions: m.row_evictions,
        residency_gain: m.resident_rows as f64 / legacy_capacity as f64,
    };
    eprintln!(
        "row_mode: {} resident rows under {} bytes (legacy layout held {}) -> {:.2}x",
        report.resident_rows,
        report.memory_budget_bytes,
        report.legacy_capacity_rows,
        report.residency_gain
    );
    report
}

fn service_report(quick: bool, groups: &mut Vec<Group>) -> ServiceReport {
    use std::sync::Arc;
    use tfsn_engine::registry::{DeploymentConfig, DeploymentRegistry, DeploymentSource};
    use tfsn_engine::server::{HttpServer, ServerOptions};
    use tfsn_engine::service::{Service, ServiceOptions, StreamOptions};
    use tfsn_engine::{HttpClient, Request, RequestBody, Response};

    let kinds = [
        CompatibilityKind::Spa,
        CompatibilityKind::Spo,
        CompatibilityKind::Nne,
    ];
    let registry = DeploymentRegistry::new(vec![
        DeploymentConfig::new("slashdot", DeploymentSource::Slashdot),
        DeploymentConfig::new("epinions", DeploymentSource::Epinions { scale: 0.05 }),
    ])
    .expect("two named deployments");
    let deployments: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let service = Arc::new(Service::with_options(
        registry,
        ServiceOptions {
            chunk: 1024,
            ..Default::default()
        },
    ));
    let server = HttpServer::bind(
        service.clone(),
        "127.0.0.1:0",
        ServerOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    for deployment in &deployments {
        let response = service.handle(
            &Request::new(RequestBody::Warm {
                kinds: kinds.to_vec(),
            })
            .on(deployment.clone()),
        );
        assert!(
            matches!(response, Response::Warmed { .. }),
            "warm-up failed: {response:?}"
        );
    }

    let queries_per_request: usize = if quick { 100 } else { 500 };
    let requests_per_client: usize = if quick { 4 } else { 16 };
    let client_threads = 4usize;
    let body: String = (0..queries_per_request)
        .map(|i| {
            format!(
                "{{\"id\": {i}, \"kind\": \"{}\", \"task\": [{}, {}, {}]}}\n",
                kinds[i % kinds.len()].label(),
                i % 9,
                (i * 3 + 1) % 9,
                (i * 7 + 2) % 9
            )
        })
        .collect();

    // The HTTP storm: 4 keep-alive clients, split across the deployments.
    // Per-request latencies land in one shared lock-free histogram, so the
    // group's percentiles come out in ns per query below.
    let request_hist = LatencyHistogram::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let body = &body;
            let deployment = &deployments[t % deployments.len()];
            let request_hist = &request_hist;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect to bench server");
                let target = format!("/v1/batch?deployment={deployment}&timing=false");
                for _ in 0..requests_per_client {
                    let request_start = Instant::now();
                    let reply = client.post(&target, body).expect("bench batch request");
                    request_hist.record(
                        request_start.elapsed().as_nanos() as u64 / queries_per_request as u64,
                    );
                    assert_eq!(reply.status, 200);
                    assert!(!reply.body.is_empty());
                    std::hint::black_box(reply.body);
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let total_queries = (client_threads * requests_per_client * queries_per_request) as u64;
    let http_qps = total_queries as f64 / wall.max(1e-9);

    // The same streams through the CLI transport (no HTTP framing).
    let inprocess_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let body = &body;
            let service = &service;
            let deployment = &deployments[t % deployments.len()];
            scope.spawn(move || {
                for _ in 0..requests_per_client {
                    let mut sink = Vec::new();
                    service
                        .stream_batch(
                            Some(deployment),
                            std::io::Cursor::new(body.as_bytes()),
                            &mut sink,
                            StreamOptions::timing(false),
                        )
                        .expect("in-process stream");
                    std::hint::black_box(sink);
                }
            });
        }
    });
    let inprocess_wall = inprocess_start.elapsed().as_secs_f64();
    let inprocess_qps = total_queries as f64 / inprocess_wall.max(1e-9);
    server.shutdown();

    // What the engines themselves saw: the per-deployment query-latency
    // summaries the `telemetry` op reports, covering both storms.
    let mut query_stats = Vec::new();
    if let Response::Telemetry {
        deployments: reports,
    } = service.handle(&Request::new(RequestBody::Telemetry))
    {
        for d in reports {
            if let Some(axis) = d.telemetry.ops.iter().find(|a| a.label == "query") {
                query_stats.push((d.deployment, axis.stats.clone()));
            }
        }
    }

    // The median stays the wall-derived aggregate (comparable to the v3
    // reports); the percentiles are client-observed per-request latency
    // divided by queries per request, which under 4-way concurrency sits
    // above that aggregate by roughly the client count.
    let request_snapshot = request_hist.snapshot();
    groups.push(Group {
        name: "service_http_batch/2-deployments/4-clients".to_string(),
        median_ns_per_op: (wall * 1e9) as u64 / total_queries.max(1),
        p50_ns_per_op: Some(request_snapshot.quantile(0.50)),
        p95_ns_per_op: Some(request_snapshot.quantile(0.95)),
        p99_ns_per_op: Some(request_snapshot.quantile(0.99)),
        ops_per_iter: total_queries,
        samples: 1,
    });
    let report = ServiceReport {
        deployments,
        client_threads: client_threads as u64,
        requests_per_client: requests_per_client as u64,
        queries_per_request: queries_per_request as u64,
        total_queries,
        wall_seconds: wall,
        http_qps,
        inprocess_qps,
        query_stats,
    };
    eprintln!(
        "service: {} warm queries over HTTP in {:.3}s -> {:.0} q/s \
         (in-process transport: {:.0} q/s; engine-side query p99 {})",
        report.total_queries,
        report.wall_seconds,
        report.http_qps,
        report.inprocess_qps,
        report
            .query_stats
            .iter()
            .map(|(name, s)| format!("{name} {}µs", s.p99_micros))
            .collect::<Vec<_>>()
            .join(", ")
    );
    report
}

/// Measures the live-mutation interleave against the rebuild-per-mutation
/// baseline on the slashdot deployment. Both sides apply the identical
/// mutation sequence (edge sign flips, round-robin over the edge list,
/// arriving in windows of `MUTATIONS_PER_ROUND`) and answer the identical
/// query bursts; the only difference is *how* relation state reaches the
/// post-mutation truth — one `mutate_batch` per window on one long-lived
/// engine (merged invalidation, in-place repair) vs a fresh engine
/// warm-built from scratch after every single mutation (the baseline must
/// stay serveable after each acknowledged write, so it cannot coalesce).
fn mutation_report(quick: bool, groups: &mut Vec<Group>) -> MutationBenchReport {
    use signed_graph::EdgeMutation;

    // The serving warm set: every evaluated kind stays resident on a real
    // server, so the rebuild baseline must re-materialise all of them per
    // mutation, while the live engine recomputes only what queries touch.
    let kinds = CompatibilityKind::EVALUATED;
    const MUTATIONS_PER_ROUND: usize = 4;
    let rounds: usize = if quick { 4 } else { 12 };
    let queries_per_round: usize = 8;
    let dataset_deployment = || Deployment::from_dataset(tfsn_datasets::slashdot());
    // The bounded greedy config the row-mode group also measures with: the
    // per-query row working set stays small, so what this group compares is
    // the *relation maintenance* cost — lazily recomputing the rows queries
    // actually touch vs rebuilding every row of every kind per mutation.
    let bounded = Solver::Greedy {
        algorithm: TeamAlgorithm::LCMD,
        config: GreedyConfig {
            max_seeds: Some(2),
            skill_degree_cap: Some(8),
            random_seed: 1,
        },
    };
    let queries: Vec<TeamQuery> = (0..queries_per_round)
        .map(|i| {
            TeamQuery::new([i % 9, (i * 3 + 1) % 9])
                .with_id(i as u64)
                .with_kind(kinds[i % kinds.len()])
                .with_solver(bounded.clone())
        })
        .collect();
    let batch = BatchOptions::with_threads(4);
    // The mutation sequence: flip the sign of edge (round mod |E|). Both
    // sides apply the same flips, so both serve the same evolving graph.
    let base_edges: Vec<(NodeId, NodeId)> = {
        let d = dataset_deployment();
        let g = d.graph();
        g.edges().iter().map(|e| (e.u, e.v)).collect()
    };
    // The window for round `r`: flip the current sign of edges
    // `r*W .. r*W + W` (mod |E|). Both sides apply the identical flips in
    // the identical order, so both serve the same evolving graph.
    let flip = |graph: &signed_graph::SignedGraph, index: usize| -> EdgeMutation {
        let (u, v) = base_edges[index % base_edges.len()];
        let sign = graph
            .sign(u, v)
            .expect("flipped edges never leave the graph")
            .flip();
        EdgeMutation::SetSign { u, v, sign }
    };

    // Incremental: one live engine, each window lands as one batch.
    let live = Engine::new(dataset_deployment());
    live.warm(&kinds);
    let incremental_start = Instant::now();
    for round in 0..rounds {
        let window: Vec<EdgeMutation> = (0..MUTATIONS_PER_ROUND)
            // Flips compose within the window (an edge flipped twice in one
            // batch must see its intermediate sign), so build against the
            // live graph one at a time only if the window self-overlaps —
            // the round-robin stride never revisits an edge inside one
            // window, so building from the pre-window graph is exact.
            .map(|j| flip(&live.graph(), round * MUTATIONS_PER_ROUND + j))
            .collect();
        live.mutate_batch(&window).expect("edges exist");
        std::hint::black_box(live.batch(&queries, &batch));
    }
    let incremental_wall = incremental_start.elapsed().as_secs_f64();
    let live_metrics = live.metrics();

    // Baseline: after every single mutation, rebuild a fresh engine from
    // the mutated graph and re-warm every kind the queries use (what
    // serving would have to do without incremental updates: any edge
    // change means a full relation rebuild, and each write is acknowledged
    // — and must be serveable — before the next arrives).
    let mut rebuild_deployment = dataset_deployment();
    let rebuild_start = Instant::now();
    for round in 0..rounds {
        let mut last: Option<Engine> = None;
        for j in 0..MUTATIONS_PER_ROUND {
            let graph = rebuild_deployment.graph();
            let mutation = flip(graph, round * MUTATIONS_PER_ROUND + j);
            let mut mutated = graph.clone();
            mutated.apply_mutation(&mutation).expect("edge exists");
            rebuild_deployment = Deployment::new(
                "slashdot-rebuilt",
                mutated,
                rebuild_deployment.universe().clone(),
                rebuild_deployment.skills().clone(),
            )
            .expect("shape unchanged");
            let fresh = Engine::new(rebuild_deployment.clone());
            fresh.warm(&kinds);
            last = Some(fresh);
        }
        let engine = last.expect("at least one mutation per round");
        std::hint::black_box(engine.batch(&queries, &batch));
    }
    let rebuild_wall = rebuild_start.elapsed().as_secs_f64();

    let ops = (rounds * (queries_per_round + MUTATIONS_PER_ROUND)) as u64;
    groups.push(Group {
        name: "mutation_interleave/slashdot/incremental".to_string(),
        median_ns_per_op: (incremental_wall * 1e9) as u64 / ops.max(1),
        p50_ns_per_op: None,
        p95_ns_per_op: None,
        p99_ns_per_op: None,
        ops_per_iter: ops,
        samples: 1,
    });
    groups.push(Group {
        name: "mutation_interleave/slashdot/full-rebuild".to_string(),
        median_ns_per_op: (rebuild_wall * 1e9) as u64 / ops.max(1),
        p50_ns_per_op: None,
        p95_ns_per_op: None,
        p99_ns_per_op: None,
        ops_per_iter: ops,
        samples: 1,
    });
    let report = MutationBenchReport {
        deployment: "slashdot".to_string(),
        kinds: kinds.iter().map(|k| k.label().to_string()).collect(),
        rounds: rounds as u64,
        mutations_per_round: MUTATIONS_PER_ROUND as u64,
        queries_per_round: queries_per_round as u64,
        incremental_wall_seconds: incremental_wall,
        incremental_ops_per_second: ops as f64 / incremental_wall.max(1e-9),
        rebuild_wall_seconds: rebuild_wall,
        rebuild_ops_per_second: ops as f64 / rebuild_wall.max(1e-9),
        mutations_applied: live_metrics.mutations_applied,
        rows_invalidated: live_metrics.rows_invalidated,
        rows_repaired: live.store().rows_repaired_count() as u64,
        speedup: rebuild_wall / incremental_wall.max(1e-9),
    };
    eprintln!(
        "mutation: {} rounds x ({}-mutation window + {} queries) in {:.3}s live vs \
         {:.3}s rebuild-per-mutation -> {:.2}x ({} rows invalidated, {} repaired in place)",
        report.rounds,
        report.mutations_per_round,
        report.queries_per_round,
        report.incremental_wall_seconds,
        report.rebuild_wall_seconds,
        report.speedup,
        report.rows_invalidated,
        report.rows_repaired
    );
    report
}

/// The row-repair micro-contrast (see the module docs): what one resident
/// row costs to patch in place vs to recompute from scratch. The live
/// engine's flip batches alternate each edge's sign back and forth, so the
/// graph (and therefore the per-iteration work) never drifts.
#[derive(Debug, Serialize)]
struct RepairBenchReport {
    deployment_spec: String,
    nodes: u64,
    /// Sign flips per `mutate_batch` call.
    flips_per_batch: u64,
    /// Resident rows `compat::repair` patched per batch (counter-measured).
    rows_repaired_per_batch: u64,
    /// Rows the live engine rebuilt per batch — 0 means every affected
    /// resident row was repaired, none fell back to invalidation.
    rows_rebuilt_per_batch: u64,
    repair_ns_per_row: u64,
    rebuild_ns_per_row: u64,
    /// `rebuild_ns_per_row / repair_ns_per_row` — the per-row win.
    per_row_gain: f64,
}

fn repair_report(quick: bool, groups: &mut Vec<Group>) -> RepairBenchReport {
    use signed_graph::EdgeMutation;
    use tfsn_engine::registry::DeploymentSource;

    const SPEC: &str = "synthetic:nodes=600,edges=2400,skills=32,seed=7";
    const KIND: CompatibilityKind = CompatibilityKind::Nne;
    const FLIPS: usize = 8;
    let samples = if quick { 5 } else { 11 };
    let rows_options = || EngineOptions {
        policy: StorePolicy::rows(None),
        ..Default::default()
    };
    let base = DeploymentSource::parse(SPEC)
        .expect("valid synthetic spec")
        .load();
    // Fills every row of KIND (repair only ever patches resident rows).
    let sweep = |engine: &Engine| {
        let fetched = engine.store().fetch(KIND);
        let scope = fetched.scope();
        for u in 0..engine.graph().node_count() {
            std::hint::black_box(scope.compat().packed_row(NodeId::new(u)));
        }
    };
    let live = Engine::with_options(base.clone(), rows_options());
    sweep(&live);
    let nodes = live.graph().node_count();
    // FLIPS edges spread across the edge list; every batch flips each
    // edge's current sign, so consecutive batches undo each other.
    let edges: Vec<(NodeId, NodeId)> = live.graph().edges().iter().map(|e| (e.u, e.v)).collect();
    let targets: Vec<(NodeId, NodeId)> =
        (0..FLIPS).map(|i| edges[i * edges.len() / FLIPS]).collect();
    let flip_batch = |engine: &Engine| -> Vec<EdgeMutation> {
        targets
            .iter()
            .map(|&(u, v)| EdgeMutation::SetSign {
                u,
                v,
                sign: engine
                    .graph()
                    .sign(u, v)
                    .expect("flipped edges never leave the graph")
                    .flip(),
            })
            .collect()
    };
    // The per-batch constants, measured once outside the timed loop.
    let builds_before = live.store().row_build_count();
    let repaired_before = live.store().rows_repaired_count();
    live.mutate_batch(&flip_batch(&live))
        .expect("flips on existing edges apply");
    sweep(&live);
    let rows_repaired_per_batch = (live.store().rows_repaired_count() - repaired_before) as u64;
    let rows_rebuilt_per_batch = (live.store().row_build_count() - builds_before) as u64;

    let [repair_m] = measure_interleaved(
        samples,
        rows_repaired_per_batch.max(1),
        [&mut || {
            live.mutate_batch(&flip_batch(&live))
                .expect("flips on existing edges apply");
            sweep(&live); // resident rows serve patched — no rebuild work here
        }],
    );
    let [rebuild_m] = measure_interleaved(
        samples,
        nodes as u64,
        [&mut || {
            let fresh = Engine::with_options(base.clone(), rows_options());
            sweep(&fresh); // every row recomputed from scratch
        }],
    );

    for (variant, m, ops) in [
        ("repair-in-place", repair_m, rows_repaired_per_batch.max(1)),
        ("rebuild-from-scratch", rebuild_m, nodes as u64),
    ] {
        groups.push(Group {
            name: format!("repair/nne_sign_flip/{variant}"),
            median_ns_per_op: m.median_ns_per_op,
            p50_ns_per_op: m.p50_ns_per_op,
            p95_ns_per_op: m.p95_ns_per_op,
            p99_ns_per_op: m.p99_ns_per_op,
            ops_per_iter: ops,
            samples,
        });
    }
    let report = RepairBenchReport {
        deployment_spec: SPEC.to_string(),
        nodes: nodes as u64,
        flips_per_batch: FLIPS as u64,
        rows_repaired_per_batch,
        rows_rebuilt_per_batch,
        repair_ns_per_row: repair_m.median_ns_per_op,
        rebuild_ns_per_row: rebuild_m.median_ns_per_op,
        per_row_gain: rebuild_m.median_ns_per_op as f64 / repair_m.median_ns_per_op.max(1) as f64,
    };
    eprintln!(
        "repair: {} rows patched per {}-flip batch ({} rebuilt): {} ns/row \
         repaired vs {} ns/row rebuilt -> {:.2}x per row",
        report.rows_repaired_per_batch,
        report.flips_per_batch,
        report.rows_rebuilt_per_batch,
        report.repair_ns_per_row,
        report.rebuild_ns_per_row,
        report.per_row_gain,
    );
    report
}

/// The follower-side replication measurement (see the module docs).
#[derive(Debug, Serialize)]
struct ReplicationLagReport {
    deployment_spec: String,
    /// Records in the primary's log when the follower starts.
    mutations: u64,
    /// Records per pulled window (each window replays as one batch).
    max_per_pull: u64,
    /// Wall-clock from follower start until `replicated_seq == mutations`
    /// (includes poll intervals).
    catchup_seconds: f64,
    /// Row builds on the follower across the batched catch-up (rows swept
    /// resident before the storm, swept again after convergence).
    follower_row_builds: u64,
    /// Rows the follower repaired in place instead of rebuilding.
    follower_rows_repaired: u64,
    /// The identical log folded one record at a time with a read sweep
    /// after every record — the pre-batching replay cost.
    unbatched_row_builds: u64,
    /// `unbatched_row_builds / follower_row_builds` — the collapse figure.
    build_reduction: f64,
}

fn replication_lag_report(quick: bool, groups: &mut Vec<Group>) -> ReplicationLagReport {
    use signed_graph::{EdgeMutation, Sign};
    use std::sync::Arc;
    use tfsn_engine::cluster::{replica, FollowerOptions};
    use tfsn_engine::registry::{
        DeploymentConfig, DeploymentRegistry, DeploymentSource, WalConfig,
    };
    use tfsn_engine::server::{HttpServer, ServerOptions};
    use tfsn_engine::service::Service;

    const SPEC: &str = "synthetic:nodes=400,edges=1600,skills=32,seed=13";
    const DEPLOYMENT: &str = "lag";
    const KIND: CompatibilityKind = CompatibilityKind::Spo;
    const MAX_PER_PULL: usize = 64;
    let mutations_count: usize = if quick { 100 } else { 400 };
    let rows_options = || EngineOptions {
        policy: StorePolicy::rows(None),
        ..Default::default()
    };
    let sweep = |engine: &Engine| {
        let fetched = engine.store().fetch(KIND);
        let scope = fetched.scope();
        for u in 0..engine.graph().node_count() {
            std::hint::black_box(scope.compat().packed_row(NodeId::new(u)));
        }
    };
    // The same flappy storm shape the follower convergence test replays:
    // a small node range churned by inserts, removes and re-signs, so
    // batched windows can cancel work record-at-a-time replay pays for.
    let mutations: Vec<EdgeMutation> = (0..mutations_count)
        .map(|i| {
            let u = NodeId::new(i % 17);
            let v = NodeId::new((i * 7 + 1) % 23);
            let sign = if i % 3 == 0 {
                Sign::Negative
            } else {
                Sign::Positive
            };
            match i % 4 {
                0 => EdgeMutation::Insert { u, v, sign },
                1 => EdgeMutation::Remove { u, v },
                _ => EdgeMutation::SetSign { u, v, sign },
            }
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("tfsn-bench-lag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create wal scratch dir");
    let primary_service = {
        let registry = DeploymentRegistry::new(vec![DeploymentConfig::new(
            DEPLOYMENT,
            DeploymentSource::parse(SPEC).expect("valid synthetic spec"),
        )])
        .expect("primary deployment")
        .with_wal(WalConfig::new(&dir));
        Arc::new(Service::new(registry))
    };
    let primary_engine = primary_service.engine(None).expect("load primary");
    let primary = HttpServer::bind(
        primary_service.clone(),
        "127.0.0.1:0",
        ServerOptions {
            threads: 2,
            ..Default::default()
        },
    )
    .expect("bind primary");
    for m in &mutations {
        let _ = primary_engine.mutate(m); // rejections are WAL-logged too
    }

    // The follower: rows resident up front, so the storm hits live state.
    let follower_service = {
        let registry = DeploymentRegistry::new(vec![DeploymentConfig::new(
            DEPLOYMENT,
            DeploymentSource::parse(SPEC).expect("valid synthetic spec"),
        )
        .with_options(rows_options())])
        .expect("follower deployment");
        Arc::new(Service::new(registry))
    };
    let follower_engine = follower_service.engine(None).expect("load follower");
    sweep(&follower_engine);
    let catchup_start = Instant::now();
    let follower = replica::start(
        follower_service.clone(),
        FollowerOptions {
            primary: primary.addr(),
            poll: std::time::Duration::from_millis(10),
            max_per_pull: MAX_PER_PULL as u64,
        },
    );
    let deadline = catchup_start + std::time::Duration::from_secs(60);
    while follower_engine.replicated_seq() != Some(mutations_count as u64) {
        assert!(
            Instant::now() < deadline,
            "follower failed to replay {mutations_count} records within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let catchup = catchup_start.elapsed().as_secs_f64();
    follower.stop();
    sweep(&follower_engine);
    let follower_row_builds = follower_engine.store().row_build_count() as u64;
    let follower_rows_repaired = follower_engine.store().rows_repaired_count() as u64;
    primary.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // The unbatched baseline: fold the identical log one record at a time
    // with a read sweep after every record (what the pre-batching follower
    // amounted to under live reads).
    let baseline = Engine::with_options(
        DeploymentSource::parse(SPEC)
            .expect("valid synthetic spec")
            .load(),
        rows_options(),
    );
    sweep(&baseline);
    let baseline_start = Instant::now();
    for m in &mutations {
        let _ = baseline.mutate(m);
        sweep(&baseline);
    }
    let baseline_wall = baseline_start.elapsed().as_secs_f64();
    let unbatched_row_builds = baseline.store().row_build_count() as u64;
    assert_eq!(
        format!("{:?}", follower_engine.graph().edges()),
        format!("{:?}", baseline.graph().edges()),
        "batched replay must converge on the same edge list the fold does"
    );

    for (variant, wall) in [
        ("batched-follower", catchup),
        ("unbatched-fold", baseline_wall),
    ] {
        groups.push(Group {
            name: format!("replication_lag/{variant}"),
            median_ns_per_op: (wall * 1e9) as u64 / (mutations_count as u64).max(1),
            p50_ns_per_op: None,
            p95_ns_per_op: None,
            p99_ns_per_op: None,
            ops_per_iter: mutations_count as u64,
            samples: 1,
        });
    }
    let report = ReplicationLagReport {
        deployment_spec: SPEC.to_string(),
        mutations: mutations_count as u64,
        max_per_pull: MAX_PER_PULL as u64,
        catchup_seconds: catchup,
        follower_row_builds,
        follower_rows_repaired,
        unbatched_row_builds,
        build_reduction: unbatched_row_builds as f64 / follower_row_builds.max(1) as f64,
    };
    eprintln!(
        "replication_lag: {} records replayed in {:.3}s; follower built {} \
         rows (repaired {}) vs {} unbatched -> {:.1}x fewer rebuilds",
        report.mutations,
        report.catchup_seconds,
        report.follower_row_builds,
        report.follower_rows_repaired,
        report.unbatched_row_builds,
        report.build_reduction,
    );
    report
}

/// The distributed-serving measurement (see the module docs).
#[derive(Debug, Serialize)]
struct ClusterBenchReport {
    /// The synthetic deployment every backend serves.
    deployment_spec: String,
    /// Rows left resident by one storm pass on an unbudgeted engine — the
    /// measured working set the byte budget below is calibrated against.
    working_set_rows: u64,
    /// Row-store byte budget per backend engine (the thrash lever: the
    /// full query working set does not fit in one budget, half does).
    row_budget_bytes: u64,
    /// Distinct one-line batch bodies cycled by the storm.
    distinct_queries: u64,
    /// Timed passes over the distinct-query set per topology.
    cycles: u64,
    /// CPU cores visible to this run. On a single-core host the scaling
    /// figure below measures aggregate-cache capacity (fewer row
    /// rebuilds), not parallel solve throughput.
    host_cores: u64,
    /// Warm storm q/s direct at one budgeted server (no router).
    single_qps: f64,
    /// The same storm through the router over one replica.
    router_one_replica_qps: f64,
    /// The same storm through the router over two replicas with
    /// content-affinity reads (each budgeted cache holds its share).
    router_two_replicas_qps: f64,
    /// `router_two_replicas_qps / single_qps` — the ≥1.7× acceptance.
    scaling_two_replicas: f64,
    /// Row builds observed during the timed single-server storm vs the
    /// sum across both replicas in the two-replica storm (the mechanism
    /// behind the scaling figure: affinity stops the rebuild churn).
    single_row_builds: u64,
    two_replica_row_builds: u64,
    /// Mutations shipped through the router during the replication burst.
    replication_mutations: u64,
    /// Wall-clock from the last acknowledged mutation until both
    /// followers reported `replicated_seq == end_seq` over their own
    /// stats endpoints (includes one 25 ms poll interval).
    replication_catchup_seconds: f64,
}

/// Measures the telemetry hot path itself: one `record()` call — three
/// relaxed atomics — on values spread across the histogram's bucket range.
/// This is the cost every instrumented operation pays per sample, so it is
/// the number backing the "no measurable overhead on the query path" claim;
/// compare it against any query group's ns/op to see the margin.
fn telemetry_overhead_group(quick: bool, groups: &mut Vec<Group>) {
    let samples = if quick { 5 } else { 11 };
    let ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let hist = LatencyHistogram::default();
    let [measured] = measure_interleaved(
        samples,
        ops,
        [&mut || {
            for i in 0..ops {
                // Vary the recorded value so bucket indexing is exercised
                // across octaves, not pinned to one hot cache line.
                hist.record(std::hint::black_box(i & 0xFFFF));
            }
        }],
    );
    eprintln!(
        "telemetry_overhead: {} ns per record() (p99 {} ns)",
        measured.median_ns_per_op,
        measured.p99_ns_per_op.unwrap_or(0)
    );
    groups.push(Group {
        name: "telemetry_overhead".to_string(),
        median_ns_per_op: measured.median_ns_per_op,
        p50_ns_per_op: measured.p50_ns_per_op,
        p95_ns_per_op: measured.p95_ns_per_op,
        p99_ns_per_op: measured.p99_ns_per_op,
        ops_per_iter: ops,
        samples,
    });
}

/// The per-objective serving measurement: one warm engine, the same query
/// workload solved under every team objective. The committed per-objective
/// solved counts and scores are the PR 7 end-to-end acceptance evidence.
#[derive(Debug, Serialize)]
struct ObjectiveBenchReport {
    deployment: String,
    kind: String,
    queries_per_iter: u64,
    results: Vec<ObjectiveResult>,
}

/// One objective's outcome over the benchmark workload.
#[derive(Debug, Serialize)]
struct ObjectiveResult {
    objective: String,
    median_ns_per_op: u64,
    /// Queries answered `ok` out of `queries_per_iter`.
    solved: u64,
    /// The first solved answer's score (`None` for `min_team`, which
    /// optimises without scoring).
    sample_score: Option<u64>,
}

fn objectives_report(quick: bool, groups: &mut Vec<Group>) -> ObjectiveBenchReport {
    use tfsn_engine::Objective;

    let samples = if quick { 5 } else { 11 };
    let ops: u64 = if quick { 200 } else { 1000 };
    let engine = Engine::new(Deployment::from_dataset(tfsn_datasets::slashdot()));
    let kind = CompatibilityKind::Spa;
    engine.warm(&[kind]);
    let variants: [(&str, Option<Objective>); 3] = [
        // The default path: no objective on the query, the legacy solve.
        ("min_team", None),
        ("synergy", Some(Objective::Synergy)),
        (
            "constrained",
            Some(Objective::Constrained {
                include: Vec::new(),
                max_size: Some(6),
                max_distance: Some(4),
            }),
        ),
    ];
    let queries_for = |objective: &Option<Objective>| -> Vec<TeamQuery> {
        (0..ops)
            .map(|i| {
                let i = i as usize;
                let mut q = TeamQuery::new([i % 9, (i * 3 + 1) % 9, (i * 7 + 2) % 9])
                    .with_id(i as u64)
                    .with_kind(kind);
                q.objective = objective.clone();
                q
            })
            .collect()
    };
    let workloads: Vec<Vec<TeamQuery>> = variants.iter().map(|(_, o)| queries_for(o)).collect();
    let batch = BatchOptions::with_threads(2);
    let mut run0 = || {
        std::hint::black_box(engine.batch(&workloads[0], &batch));
    };
    let mut run1 = || {
        std::hint::black_box(engine.batch(&workloads[1], &batch));
    };
    let mut run2 = || {
        std::hint::black_box(engine.batch(&workloads[2], &batch));
    };
    let measured = measure_interleaved(samples, ops, [&mut run0, &mut run1, &mut run2]);

    let mut results = Vec::new();
    for ((label, _), (workload, m)) in variants.iter().zip(workloads.iter().zip(measured)) {
        let answers = engine.batch(workload, &batch);
        let solved = answers
            .iter()
            .filter(|a| a.status == tfsn_engine::AnswerStatus::Ok)
            .count() as u64;
        let sample_score = answers
            .iter()
            .find(|a| a.status == tfsn_engine::AnswerStatus::Ok)
            .and_then(|a| a.score);
        eprintln!(
            "objectives/{label}: {} ns/op, {solved}/{ops} solved",
            m.median_ns_per_op
        );
        groups.push(Group {
            name: format!("objectives/{label}"),
            median_ns_per_op: m.median_ns_per_op,
            p50_ns_per_op: m.p50_ns_per_op,
            p95_ns_per_op: m.p95_ns_per_op,
            p99_ns_per_op: m.p99_ns_per_op,
            ops_per_iter: ops,
            samples,
        });
        results.push(ObjectiveResult {
            objective: label.to_string(),
            median_ns_per_op: m.median_ns_per_op,
            solved,
            sample_score,
        });
    }
    ObjectiveBenchReport {
        deployment: "slashdot".to_string(),
        kind: kind.label().to_string(),
        queries_per_iter: ops,
        results,
    }
}

/// The WAL durability-overhead measurement: the slashdot mutation
/// interleave re-run with a write-ahead log attached under each fsync
/// policy, against the same interleave with no log at all.
#[derive(Debug, Serialize)]
struct DurabilityBenchReport {
    deployment: String,
    rounds: u64,
    queries_per_round: u64,
    /// Wall-clock of the no-WAL interleave (the baseline).
    baseline_wall_seconds: f64,
    policies: Vec<DurabilityPolicyResult>,
}

/// One fsync policy's cost over the interleave.
#[derive(Debug, Serialize)]
struct DurabilityPolicyResult {
    fsync: String,
    wall_seconds: f64,
    /// `wall_seconds / baseline_wall_seconds` — the `batch ≤ 1.15`
    /// acceptance figure.
    overhead: f64,
    /// Records appended (sanity: equals `rounds`).
    wal_appends: u64,
    /// Bytes the log grew to.
    wal_bytes: u64,
}

fn durability_report(quick: bool, groups: &mut Vec<Group>) -> DurabilityBenchReport {
    use signed_graph::EdgeMutation;
    use tfsn_engine::{FsyncPolicy, Wal};

    let kinds = CompatibilityKind::EVALUATED;
    let rounds: usize = if quick { 4 } else { 12 };
    let queries_per_round: usize = 8;
    let bounded = Solver::Greedy {
        algorithm: TeamAlgorithm::LCMD,
        config: GreedyConfig {
            max_seeds: Some(2),
            skill_degree_cap: Some(8),
            random_seed: 1,
        },
    };
    let queries: Vec<TeamQuery> = (0..queries_per_round)
        .map(|i| {
            TeamQuery::new([i % 9, (i * 3 + 1) % 9])
                .with_id(i as u64)
                .with_kind(kinds[i % kinds.len()])
                .with_solver(bounded.clone())
        })
        .collect();
    let batch = BatchOptions::with_threads(4);
    let dataset_deployment = || Deployment::from_dataset(tfsn_datasets::slashdot());
    let base_edges: Vec<(NodeId, NodeId)> = {
        let d = dataset_deployment();
        d.graph().edges().iter().map(|e| (e.u, e.v)).collect()
    };
    let dir = std::env::temp_dir().join(format!("tfsn-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create wal scratch dir");

    // One interleave run: a fresh warm engine, `rounds` sign flips each
    // followed by a query burst — identical work on every side; the log
    // appends (and their fsyncs) are the only difference.
    let run = |policy: Option<FsyncPolicy>| -> (f64, u64, u64) {
        let engine = Engine::new(dataset_deployment());
        engine.warm(&kinds);
        let wal_path = policy.map(|p| dir.join(format!("slashdot-{}.wal", p.label())));
        if let (Some(policy), Some(path)) = (policy, &wal_path) {
            std::fs::remove_file(path).ok();
            let (wal, _) = Wal::open(path, policy).expect("open bench wal");
            engine
                .attach_wal(wal)
                .unwrap_or_else(|_| panic!("fresh engine has no wal"));
        }
        let start = Instant::now();
        for round in 0..rounds {
            let (u, v) = base_edges[round % base_edges.len()];
            let sign = engine
                .graph()
                .sign(u, v)
                .expect("flipped edges never leave the graph")
                .flip();
            engine
                .mutate(&EdgeMutation::SetSign { u, v, sign })
                .expect("edge exists");
            std::hint::black_box(engine.batch(&queries, &batch));
        }
        let wall = start.elapsed().as_secs_f64();
        let appends = engine.wal().map(|w| w.appends()).unwrap_or(0);
        let bytes = wal_path
            .as_ref()
            .and_then(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .unwrap_or(0);
        (wall, appends, bytes)
    };

    let ops = (rounds * (queries_per_round + 1)) as u64;
    let mut push_group = |label: &str, wall: f64| {
        groups.push(Group {
            name: format!("durability/slashdot/{label}"),
            median_ns_per_op: (wall * 1e9) as u64 / ops.max(1),
            p50_ns_per_op: None,
            p95_ns_per_op: None,
            p99_ns_per_op: None,
            ops_per_iter: ops,
            samples: 1,
        });
    };
    let (baseline_wall, _, _) = run(None);
    push_group("no-wal", baseline_wall);
    let mut policies = Vec::new();
    for policy in FsyncPolicy::ALL {
        let (wall, wal_appends, wal_bytes) = run(Some(policy));
        push_group(policy.label(), wall);
        let overhead = wall / baseline_wall.max(1e-9);
        eprintln!(
            "durability/{}: {:.3}s vs {:.3}s no-wal -> {:.3}x ({} appends, {} bytes)",
            policy.label(),
            wall,
            baseline_wall,
            overhead,
            wal_appends,
            wal_bytes,
        );
        policies.push(DurabilityPolicyResult {
            fsync: policy.label().to_string(),
            wall_seconds: wall,
            overhead,
            wal_appends,
            wal_bytes,
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    DurabilityBenchReport {
        deployment: "slashdot".to_string(),
        rounds: rounds as u64,
        queries_per_round: queries_per_round as u64,
        baseline_wall_seconds: baseline_wall,
        policies,
    }
}

/// The distributed-serving measurement: one warm batch storm, served three
/// ways. Every backend runs the same synthetic deployment under a row-store
/// byte budget sized so the storm's full working set does not fit in one
/// engine but half of it does. The lone server therefore churns its LRU —
/// every cycle rebuilds the rows the previous queries evicted — while the
/// two-replica topology behind `--affinity` content hashing pins each query
/// to one replica, so each budgeted cache serves a stable, resident share.
/// The scaling figure is real avoided work (row rebuilds), which is why it
/// expresses even on a single-core host; on multi-core hosts the replicas'
/// parallel solves add on top of it.
fn cluster_report(quick: bool, groups: &mut Vec<Group>) -> ClusterBenchReport {
    use std::sync::Arc;
    use tfsn_engine::client::RetryPolicy;
    use tfsn_engine::cluster::{replica, FollowerOptions, Router, RouterOptions, Topology};
    use tfsn_engine::registry::{
        DeploymentConfig, DeploymentRegistry, DeploymentSource, WalConfig,
    };
    use tfsn_engine::server::{HttpServer, ServerOptions};
    use tfsn_engine::service::{Service, ServiceOptions};
    use tfsn_engine::{HttpClient, Response};

    const SPEC: &str = "synthetic:nodes=800,edges=3200,skills=64,seed=11";
    const DEPLOYMENT: &str = "net";
    const NODES: usize = 800;
    let cycles: usize = if quick { 3 } else { 10 };

    // The storm: 16 distinct two-skill tasks over the Zipf *tail* (skills
    // 32..63). Tail skills have few, mostly disjoint holders, so each
    // task's candidate rows barely overlap the others' — which is what
    // lets an affinity split genuinely partition the row working set.
    // (Head-skill tasks would not: a popular skill plants its holders in
    // every share's union, and no budget separates the topologies.)
    let tasks: Vec<[usize; 2]> = (0..16).map(|i| [32 + 2 * i, 33 + 2 * i]).collect();
    // The bounded greedy config (same spirit as `row_mode_report`): seed
    // expansion is capped so the solver's own CPU stays small next to the
    // row-(re)build work — the quantity the topologies differ in.
    let solver_fields = r#""max_seeds": 2, "skill_degree_cap": 8"#;
    let bodies: Vec<String> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "{{\"id\": {i}, \"task\": [{}, {}], {solver_fields}}}\n",
                t[0], t[1]
            )
        })
        .collect();

    // Calibrate the byte budget from the storm's *measured* working set:
    // one pass on an unbudgeted engine, then cap every backend at 70% of
    // the rows that pass left resident. One server cycling through 100%
    // of the working set under a 70% LRU evicts every row every cycle
    // (the sequential-scan worst case); each replica's affinity share
    // (~half the rows) sits inside the budget and stays resident.
    let calibration = DeploymentRegistry::new(vec![DeploymentConfig::new(
        DEPLOYMENT,
        DeploymentSource::parse(SPEC).expect("valid synthetic spec"),
    )
    // Row tier with no byte cap — nothing evicts, so `resident_rows`
    // after the pass IS the storm's row working set. (The default
    // materialized policy would build the full matrix and report no rows
    // at all.)
    .with_options(EngineOptions {
        policy: StorePolicy::rows(None),
        ..Default::default()
    })])
    .expect("calibration deployment");
    let calib_engine = calibration.engine(None).expect("load calibration engine");
    let calib_solver = tfsn_core::team::Solver::Greedy {
        algorithm: tfsn_core::team::policies::TeamAlgorithm::LCMD,
        config: tfsn_core::team::greedy::GreedyConfig {
            max_seeds: Some(2),
            skill_degree_cap: Some(8),
            ..Default::default()
        },
    };
    let calib_queries: Vec<tfsn_engine::TeamQuery> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            tfsn_engine::TeamQuery::new(t.iter().copied())
                .with_id(i as u64)
                .with_solver(calib_solver.clone())
        })
        .collect();
    std::hint::black_box(calib_engine.batch(&calib_queries, &BatchOptions::default()));
    let working_set_rows = calib_engine.metrics().resident_rows.max(1);
    drop(calibration);
    let row_budget = estimated_row_bytes(NODES) * working_set_rows as usize * 7 / 10;

    let service = |wal_dir: Option<&std::path::Path>| -> Arc<Service> {
        let mut registry = DeploymentRegistry::new(vec![DeploymentConfig::new(
            DEPLOYMENT,
            DeploymentSource::parse(SPEC).expect("valid synthetic spec"),
        )
        .with_options(EngineOptions {
            policy: StorePolicy::rows(Some(row_budget)),
            ..Default::default()
        })])
        .expect("one deployment");
        if let Some(dir) = wal_dir {
            registry = registry.with_wal(WalConfig::new(dir));
        }
        Arc::new(Service::with_options(
            registry,
            ServiceOptions {
                batch: BatchOptions::with_threads(1),
                chunk: 64,
                objective: None,
            },
        ))
    };
    let server = |svc: Arc<Service>| -> HttpServer {
        svc.engine(None).expect("load deployment up front");
        HttpServer::bind(
            svc,
            "127.0.0.1:0",
            ServerOptions {
                threads: 2,
                keep_alive: std::time::Duration::from_secs(2),
                ..Default::default()
            },
        )
        .expect("bind backend")
    };
    let row_builds = |svc: &Arc<Service>| svc.engine(None).expect("loaded").metrics().row_builds;

    let storm = |addr: std::net::SocketAddr, cycles: usize| -> f64 {
        let mut client = HttpClient::connect_with(addr, RetryPolicy::none()).expect("connect");
        let start = Instant::now();
        for _ in 0..cycles {
            for body in &bodies {
                let reply = client
                    .post("/v1/batch?timing=false", body)
                    .expect("storm batch");
                assert_eq!(reply.status, 200, "{}", reply.body);
            }
        }
        start.elapsed().as_secs_f64()
    };
    let total_queries = (cycles * bodies.len()) as u64;

    // (a) One budgeted server, storm straight at it.
    let single_svc = service(None);
    let single_srv = server(single_svc.clone());
    storm(single_srv.addr(), 1); // reach LRU steady state
    let builds_before = row_builds(&single_svc);
    let single_wall = storm(single_srv.addr(), cycles);
    let single_row_builds = row_builds(&single_svc) - builds_before;
    single_srv.shutdown();
    let single_qps = total_queries as f64 / single_wall.max(1e-9);

    // (b)/(c) The same storm through the router over N affinity replicas.
    // No replication here — identical unmutated snapshots serve the reads;
    // the primary only backs the topology's write role.
    let routed = |replica_count: usize| -> (f64, u64) {
        let prim_svc = service(None);
        let prim = server(prim_svc.clone());
        let repl_svcs: Vec<Arc<Service>> = (0..replica_count).map(|_| service(None)).collect();
        let repls: Vec<HttpServer> = repl_svcs.iter().map(|s| server(s.clone())).collect();
        let mut specs = vec![format!("prim={},role=primary", prim.addr())];
        for (i, r) in repls.iter().enumerate() {
            specs.push(format!("r{i}={},role=replica", r.addr()));
        }
        let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
        let topology = Topology::parse(&spec_refs).expect("bench topology");
        let router = Router::bind(
            &topology,
            "127.0.0.1:0",
            RouterOptions {
                affinity: true,
                ..Default::default()
            },
        )
        .expect("bind router");
        storm(router.addr(), 1);
        let before: u64 = repl_svcs.iter().map(&row_builds).sum();
        let wall = storm(router.addr(), cycles);
        let builds = repl_svcs.iter().map(&row_builds).sum::<u64>() - before;
        router.shutdown();
        for r in repls {
            r.shutdown();
        }
        prim.shutdown();
        (wall, builds)
    };
    let (one_replica_wall, _) = routed(1);
    let (two_replica_wall, two_replica_row_builds) = routed(2);
    let router_one_replica_qps = total_queries as f64 / one_replica_wall.max(1e-9);
    let router_two_replicas_qps = total_queries as f64 / two_replica_wall.max(1e-9);
    let scaling = router_two_replicas_qps / single_qps.max(1e-9);

    for (label, wall) in [
        ("single", single_wall),
        ("router-1-replica", one_replica_wall),
        ("router-2-replicas-affinity", two_replica_wall),
    ] {
        groups.push(Group {
            name: format!("cluster/{label}"),
            median_ns_per_op: (wall * 1e9) as u64 / total_queries.max(1),
            p50_ns_per_op: None,
            p95_ns_per_op: None,
            p99_ns_per_op: None,
            ops_per_iter: total_queries,
            samples: 1,
        });
    }

    // Replication catch-up: a WAL-attached primary, two live followers,
    // a mutation burst through the router, and the wall time until both
    // followers report the primary's high-water mark.
    let dir = std::env::temp_dir().join(format!("tfsn-bench-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create wal scratch dir");
    let prim_svc = service(Some(&dir));
    let prim = server(prim_svc.clone());
    let follower_svcs = [service(None), service(None)];
    let follower_srvs: Vec<HttpServer> = follower_svcs.iter().map(|s| server(s.clone())).collect();
    let followers: Vec<replica::FollowerHandle> = follower_svcs
        .iter()
        .map(|s| {
            replica::start(
                s.clone(),
                FollowerOptions::new(prim.addr(), std::time::Duration::from_millis(25)),
            )
        })
        .collect();
    let specs = [
        format!("prim={},role=primary", prim.addr()),
        format!("r0={},role=replica", follower_srvs[0].addr()),
        format!("r1={},role=replica", follower_srvs[1].addr()),
    ];
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let topology = Topology::parse(&spec_refs).expect("replication topology");
    let router = Router::bind(&topology, "127.0.0.1:0", RouterOptions::default())
        .expect("bind replication router");
    let mutations: u64 = if quick { 20 } else { 60 };
    let mut client =
        HttpClient::connect_with(router.addr(), RetryPolicy::none()).expect("connect router");
    for i in 0..mutations / 2 {
        // Remove-then-insert pairs: whichever of the pair the live graph
        // rejects, both are WAL-logged (append-before-apply), so the log
        // ends exactly at `mutations`.
        for body in [
            format!(r#"{{"op": "edge_remove", "u": {i}, "v": {}}}"#, i + 1),
            format!(
                r#"{{"op": "edge_insert", "u": {i}, "v": {}, "sign": "-"}}"#,
                i + 1
            ),
        ] {
            let reply = client.post("/v1/mutate", &body).expect("mutate");
            assert!(
                reply.status == 200 || reply.status == 400,
                "mutation neither applied nor typed-rejected: {} {}",
                reply.status,
                reply.body
            );
        }
    }
    let replicated = |srv: &HttpServer| -> Option<u64> {
        let mut c = HttpClient::connect_with(srv.addr(), RetryPolicy::none()).ok()?;
        let reply = c.get("/v1/stats").ok()?;
        match Response::parse_json(&reply.body).ok()? {
            Response::Stats(stats) => stats.replicated_seq,
            _ => None,
        }
    };
    let catchup_start = Instant::now();
    let deadline = catchup_start + std::time::Duration::from_secs(30);
    while follower_srvs
        .iter()
        .any(|s| replicated(s) != Some(mutations))
    {
        assert!(
            Instant::now() < deadline,
            "followers failed to reach seq {mutations} within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let catchup = catchup_start.elapsed().as_secs_f64();
    router.shutdown();
    for f in followers {
        f.stop();
    }
    for s in follower_srvs {
        s.shutdown();
    }
    prim.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let report = ClusterBenchReport {
        deployment_spec: SPEC.to_string(),
        working_set_rows,
        row_budget_bytes: row_budget as u64,
        distinct_queries: bodies.len() as u64,
        cycles: cycles as u64,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        single_qps,
        router_one_replica_qps,
        router_two_replicas_qps,
        scaling_two_replicas: scaling,
        single_row_builds,
        two_replica_row_builds,
        replication_mutations: mutations,
        replication_catchup_seconds: catchup,
    };
    eprintln!(
        "cluster: {} working-set rows under a {}-byte budget; single {:.0} q/s \
         ({} row builds), router+1 {:.0} q/s, router+2 (affinity) {:.0} q/s \
         ({} row builds) -> {:.2}x; {} mutations replicated to 2 followers in {:.3}s",
        report.working_set_rows,
        report.row_budget_bytes,
        report.single_qps,
        report.single_row_builds,
        report.router_one_replica_qps,
        report.router_two_replicas_qps,
        report.two_replica_row_builds,
        report.scaling_two_replicas,
        report.replication_mutations,
        report.replication_catchup_seconds,
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    // Deliberately NOT BENCH_PR8.json: the committed artifact holds the
    // full-run acceptance numbers, and a casual local/CI run must not
    // silently clobber it. Pass `--output BENCH_PR8.json` to refresh it.
    let mut output = String::from("bench-report.local.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--output" => {
                output = args
                    .get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: --output needs a value");
                        std::process::exit(2);
                    })
                    .clone();
                i += 2;
            }
            other => {
                eprintln!(
                    "error: unknown flag `{other}`\nusage: bench-report [--quick] [--output PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut groups = Vec::new();
    let mut speedups = Vec::new();
    greedy_groups(quick, &mut groups, &mut speedups);
    let row_mode = row_mode_report(quick, &mut groups);
    let service = service_report(quick, &mut groups);
    let mutation = mutation_report(quick, &mut groups);
    let repair = repair_report(quick, &mut groups);
    let replication_lag = replication_lag_report(quick, &mut groups);
    let objectives = objectives_report(quick, &mut groups);
    let durability = durability_report(quick, &mut groups);
    let cluster = cluster_report(quick, &mut groups);
    telemetry_overhead_group(quick, &mut groups);
    let report = Report {
        schema: "tfsn-bench-report/v8",
        quick,
        groups,
        speedups,
        row_mode,
        service,
        mutation,
        repair,
        replication_lag,
        objectives,
        durability,
        cluster,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    let mut file =
        std::fs::File::create(&output).unwrap_or_else(|e| panic!("cannot create {output}: {e}"));
    writeln!(file, "{json}").expect("write report");
    eprintln!("wrote {output}");
}
