//! # tfsn-bench
//!
//! Criterion benchmarks for the TFSN reproduction. Each bench target
//! corresponds to one artefact of the paper's evaluation (see `DESIGN.md`'s
//! per-experiment index) and, before measuring, prints the regenerated
//! rows/series at smoke scale so `cargo bench` output doubles as a compact
//! reproduction log:
//!
//! * `table1_stats` — Table 1 (dataset statistics).
//! * `table2_compat` — Table 2 (compatibility relation comparison).
//! * `table3_baseline` — Table 3 (unsigned team-formation baseline).
//! * `figure2_team` — Figure 2(a)–(d) (team-formation algorithms).
//! * `algo1_scaling` — ablation: Algorithm 1 (signed BFS) scaling.
//! * `sbph_width` — ablation: SBPH beam-width sensitivity.
//! * `policy_ablation` — ablation: skill × user policy combinations.

/// Shared helpers for the bench targets.
pub mod util {
    use tfsn_experiments::ExperimentConfig;

    /// What one cached compatibility row cost before bit-packing (the PR 2
    /// layout): a `Vec<bool>` plus a `Vec<Option<u32>>` behind the
    /// `SourceCompatibility` header — the baseline both `bench-report` and
    /// the `engine_throughput` residency print compare against.
    pub fn legacy_row_bytes(nodes: usize) -> usize {
        std::mem::size_of::<tfsn_core::compat::SourceCompatibility>()
            + nodes * (std::mem::size_of::<bool>() + std::mem::size_of::<Option<u32>>())
    }

    /// The configuration used for the "print the regenerated artefact"
    /// preamble of each bench: the quick config, without the exact-SBP pass
    /// (benchmarked separately) so the preamble stays in the seconds range.
    pub fn preamble_config() -> ExperimentConfig {
        ExperimentConfig {
            sbp_exact_on_slashdot: false,
            ..ExperimentConfig::quick()
        }
    }
}
