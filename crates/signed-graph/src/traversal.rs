//! Breadth-first traversals, shortest-path lengths and diameter estimation.
//!
//! These are the unsigned building blocks: distances that ignore edge signs.
//! They are used (a) for the NNE distance definition, (b) by the dataset
//! statistics (Table 1 diameter column), and (c) by the unsigned baseline of
//! Table 3. Sign-aware shortest-path counting (Algorithm 1 of the paper)
//! lives in `tfsn-core::compat::sp`, built on the same queue discipline.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::graph::{NodeId, SignedGraph};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances over the graph, ignoring signs.
///
/// Returns a vector `d` with `d[v] =` number of edges on a shortest path from
/// `source` to `v`, or [`UNREACHABLE`] if `v` is in a different component.
pub fn bfs_distances(g: &SignedGraph, source: NodeId) -> Vec<u32> {
    bfs_distances_limited(g, source, u32::MAX)
}

/// Like [`bfs_distances`] but stops expanding beyond `max_depth` edges.
pub fn bfs_distances_limited(g: &SignedGraph, source: NodeId, max_depth: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_depth {
            continue;
        }
        for nb in g.neighbors(u) {
            let v = nb.node.index();
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Single-source BFS distances over a CSR view, ignoring signs.
pub fn bfs_distances_csr(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (v, _s) in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The unsigned shortest-path distance between `u` and `v`, or `None` if they
/// are disconnected.
pub fn distance(g: &SignedGraph, u: NodeId, v: NodeId) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let d = bfs_distances(g, u);
    match d[v.index()] {
        UNREACHABLE => None,
        x => Some(x),
    }
}

/// Reconstructs one (unsigned) shortest path from `source` to `target` as a
/// node sequence, or `None` if unreachable.
pub fn shortest_path(g: &SignedGraph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    if source == target {
        return Some(vec![source]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        if u == target {
            break;
        }
        for nb in g.neighbors(u) {
            let v = nb.node;
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = dist[u.index()] + 1;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    if dist[target.index()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path.first(), Some(&source));
    Some(path)
}

/// The eccentricity of `source` within its connected component: the maximum
/// finite BFS distance from `source`.
pub fn eccentricity(g: &SignedGraph, source: NodeId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter of the graph restricted to each connected component
/// (the maximum finite pairwise distance). O(V·E); use
/// [`approximate_diameter`] on large graphs.
pub fn exact_diameter(g: &SignedGraph) -> u32 {
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v));
    }
    best
}

/// Lower-bound diameter estimate using the classic double-sweep heuristic
/// repeated from `samples` pseudo-random starting nodes.
///
/// The returned value is always a valid lower bound on the true diameter and
/// in practice matches it on social-network-like graphs. Deterministic for a
/// fixed `seed`.
pub fn approximate_diameter(g: &SignedGraph, samples: usize, seed: u64) -> u32 {
    if g.node_count() == 0 {
        return 0;
    }
    let mut best = 0u32;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for _ in 0..samples.max(1) {
        // xorshift* step for a cheap deterministic start node choice.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let start =
            NodeId::new((state.wrapping_mul(0x2545_F491_4F6C_DD1D) as usize) % g.node_count());
        // Double sweep: BFS from start, then BFS from the farthest node found.
        let d1 = bfs_distances(g, start);
        let (far, _) = d1
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHABLE)
            .max_by_key(|(_, &d)| d)
            .unwrap_or((start.index(), &0));
        let d2 = bfs_distances(g, NodeId::new(far));
        let ecc = d2
            .into_iter()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Average pairwise distance between distinct reachable pairs, estimated from
/// BFS trees rooted at `sources` (all nodes if `sources` is `None`).
pub fn average_distance(g: &SignedGraph, sources: Option<&[NodeId]>) -> f64 {
    let owned: Vec<NodeId>;
    let sources = match sources {
        Some(s) => s,
        None => {
            owned = g.nodes().collect();
            &owned
        }
    };
    let mut total = 0u64;
    let mut count = 0u64;
    for &s in sources {
        for (v, d) in bfs_distances(g, s).into_iter().enumerate() {
            if d != UNREACHABLE && v != s.index() {
                total += d as u64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;
    use crate::sign::Sign;

    /// A path graph 0-1-2-3-4 plus a disconnected node 5.
    fn path_graph() -> SignedGraph {
        let mut triples = vec![];
        for i in 0..4 {
            triples.push((i, i + 1, Sign::Positive));
        }
        let mut b = crate::builder::GraphBuilder::with_nodes(6);
        for (u, v, s) in triples {
            b.add_edge(NodeId::new(u), NodeId::new(v), s).unwrap();
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[..5], [0, 1, 2, 3, 4]);
        assert_eq!(d[5], UNREACHABLE);
    }

    #[test]
    fn bfs_limited_depth() {
        let g = path_graph();
        let d = bfs_distances_limited(&g, NodeId::new(0), 2);
        assert_eq!(d[..5], [0, 1, 2, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn csr_bfs_agrees() {
        let g = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (2, 3, Sign::Positive),
            (3, 0, Sign::Negative),
            (2, 4, Sign::Positive),
        ]);
        let csr = CsrGraph::from_graph(&g);
        for v in g.nodes() {
            assert_eq!(bfs_distances(&g, v), bfs_distances_csr(&csr, v));
        }
    }

    #[test]
    fn distance_and_path() {
        let g = path_graph();
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(4)), Some(4));
        assert_eq!(distance(&g, NodeId::new(2), NodeId::new(2)), Some(0));
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(5)), None);
        let p = shortest_path(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(p.len(), 4);
        assert!(g.is_simple_path(&p));
        assert_eq!(shortest_path(&g, NodeId::new(0), NodeId::new(5)), None);
        assert_eq!(
            shortest_path(&g, NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path_graph();
        assert_eq!(eccentricity(&g, NodeId::new(0)), 4);
        assert_eq!(eccentricity(&g, NodeId::new(2)), 2);
        assert_eq!(exact_diameter(&g), 4);
        let approx = approximate_diameter(&g, 4, 7);
        assert!(approx <= 4);
        assert!(
            approx >= 2,
            "double sweep should find a long path, got {approx}"
        );
    }

    #[test]
    fn average_distance_path() {
        // Path 0-1-2: pairs (0,1)=1 (0,2)=2 (1,2)=1 → average over ordered pairs = 8/6
        let g = from_edge_triples(vec![(0, 1, Sign::Positive), (1, 2, Sign::Positive)]);
        let avg = average_distance(&g, None);
        assert!((avg - 8.0 / 6.0).abs() < 1e-9);
        let avg_single = average_distance(&g, Some(&[NodeId::new(0)]));
        assert!((avg_single - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        let g = crate::builder::GraphBuilder::with_nodes(0).build();
        assert_eq!(exact_diameter(&g), 0);
        assert_eq!(approximate_diameter(&g, 3, 1), 0);
        let g1 = crate::builder::GraphBuilder::with_nodes(1).build();
        assert_eq!(exact_diameter(&g1), 0);
        assert_eq!(average_distance(&g1, None), 0.0);
    }
}
