//! Connected components and largest-component extraction.
//!
//! The paper assumes the input graph is connected; real (and synthetic)
//! signed networks usually are not, so the dataset loaders restrict the graph
//! to its largest connected component using [`largest_component_subgraph`].

use std::collections::VecDeque;

use crate::builder::GraphBuilder;
use crate::graph::{NodeId, SignedGraph};

/// The partition of nodes into connected components (ignoring signs).
#[derive(Debug, Clone)]
pub struct Components {
    /// `component_of[v]` is the 0-based component index of node `v`.
    pub component_of: Vec<u32>,
    /// Sizes of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index of the largest component (ties broken by lowest id).
    pub fn largest(&self) -> Option<usize> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// `true` if the whole graph is a single connected component (or empty).
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }

    /// The nodes belonging to component `id`.
    pub fn members(&self, id: usize) -> Vec<NodeId> {
        self.component_of
            .iter()
            .enumerate()
            .filter(|(_, &c)| c as usize == id)
            .map(|(v, _)| NodeId::new(v))
            .collect()
    }
}

/// Computes the connected components of `g` with a BFS sweep.
pub fn connected_components(g: &SignedGraph) -> Components {
    let n = g.node_count();
    let mut component_of = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component_of[start] != u32::MAX {
            continue;
        }
        let cid = sizes.len() as u32;
        let mut size = 0usize;
        component_of[start] = cid;
        queue.push_back(NodeId::new(start));
        while let Some(u) = queue.pop_front() {
            size += 1;
            for nb in g.neighbors(u) {
                let v = nb.node.index();
                if component_of[v] == u32::MAX {
                    component_of[v] = cid;
                    queue.push_back(nb.node);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        component_of,
        sizes,
    }
}

/// `true` if every pair of nodes in `g` is connected by some path.
pub fn is_connected(g: &SignedGraph) -> bool {
    connected_components(g).is_connected()
}

/// Extracts the subgraph induced by the largest connected component.
///
/// Returns the new graph and the mapping `new -> old` node id, so callers can
/// translate attributes (e.g. skills) onto the restricted node set. Nodes in
/// the new graph are renumbered densely, preserving relative order.
pub fn largest_component_subgraph(g: &SignedGraph) -> (SignedGraph, Vec<NodeId>) {
    let comps = connected_components(g);
    let Some(target) = comps.largest() else {
        return (GraphBuilder::new().build(), Vec::new());
    };
    let target = target as u32;
    let mut old_of_new = Vec::new();
    let mut new_of_old = vec![u32::MAX; g.node_count()];
    for v in g.nodes() {
        if comps.component_of[v.index()] == target {
            new_of_old[v.index()] = old_of_new.len() as u32;
            old_of_new.push(v);
        }
    }
    let mut b = GraphBuilder::with_nodes(old_of_new.len());
    for e in g.edges() {
        let (nu, nv) = (new_of_old[e.u.index()], new_of_old[e.v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(NodeId::new(nu as usize), NodeId::new(nv as usize), e.sign)
                .expect("restricted edge must be valid");
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;
    use crate::sign::Sign;

    fn two_components() -> SignedGraph {
        // Component A: 0-1-2 (3 nodes), Component B: 3-4 (2 nodes), node 5 isolated.
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(NodeId::new(0), NodeId::new(1), Sign::Positive)
            .unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), Sign::Negative)
            .unwrap();
        b.add_edge(NodeId::new(3), NodeId::new(4), Sign::Positive)
            .unwrap();
        b.build()
    }

    #[test]
    fn counts_and_sizes() {
        let g = two_components();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
        assert!(!c.is_connected());
        assert!(!is_connected(&g));
        let largest = c.largest().unwrap();
        assert_eq!(c.sizes[largest], 3);
        assert_eq!(c.members(largest).len(), 3);
    }

    #[test]
    fn connected_graph() {
        let g = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (2, 0, Sign::Positive),
        ]);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn largest_component_extraction() {
        let g = two_components();
        let (sub, mapping) = largest_component_subgraph(&g);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(is_connected(&sub));
        // Mapping points back to the original component {0, 1, 2}.
        let mut originals: Vec<usize> = mapping.iter().map(|n| n.index()).collect();
        originals.sort_unstable();
        assert_eq!(originals, vec![0, 1, 2]);
        // Signs preserved under the renumbering.
        let pos = mapping.iter().position(|n| n.index() == 1).unwrap();
        let neighbor_signs: Vec<Sign> = sub
            .neighbors(NodeId::new(pos))
            .iter()
            .map(|n| n.sign)
            .collect();
        assert!(neighbor_signs.contains(&Sign::Positive));
        assert!(neighbor_signs.contains(&Sign::Negative));
    }

    #[test]
    fn empty_graph_extraction() {
        let g = GraphBuilder::new().build();
        let (sub, mapping) = largest_component_subgraph(&g);
        assert_eq!(sub.node_count(), 0);
        assert!(mapping.is_empty());
        assert!(connected_components(&g).is_connected());
    }
}
