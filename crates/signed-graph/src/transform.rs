//! Unsigned views of a signed graph.
//!
//! Table 3 of the paper compares against classic (unsigned) team formation
//! run on two derived networks: (1) the graph with signs ignored and (2) the
//! graph with negative edges deleted. Both transforms are provided here; the
//! result is still a [`SignedGraph`] whose edges are all positive, so the
//! rest of the stack needs no separate unsigned type.

use crate::builder::GraphBuilder;
use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// Strategy for deriving an unsigned graph from a signed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnsignedTransform {
    /// Keep every edge, treating all of them as positive ("Ignore sign").
    IgnoreSigns,
    /// Keep only the positive edges ("Delete negative").
    DeleteNegative,
}

impl UnsignedTransform {
    /// A short human-readable label matching the paper's Table 3 rows.
    pub fn label(self) -> &'static str {
        match self {
            UnsignedTransform::IgnoreSigns => "Ignore sign",
            UnsignedTransform::DeleteNegative => "Delete negative",
        }
    }
}

/// Applies `transform` to `g`, returning an all-positive graph over the same
/// node set.
pub fn to_unsigned(g: &SignedGraph, transform: UnsignedTransform) -> SignedGraph {
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for e in g.edges() {
        let keep = match transform {
            UnsignedTransform::IgnoreSigns => true,
            UnsignedTransform::DeleteNegative => e.sign.is_positive(),
        };
        if keep {
            b.add_edge(e.u, e.v, Sign::Positive)
                .expect("source edges are valid");
        }
    }
    b.build()
}

/// Returns the subgraph containing only edges of the requested sign (node set
/// unchanged). Useful for analyses of the positive or negative backbone.
pub fn sign_filtered(g: &SignedGraph, sign: Sign) -> SignedGraph {
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for e in g.edges() {
        if e.sign == sign {
            b.add_edge(e.u, e.v, e.sign)
                .expect("source edges are valid");
        }
    }
    b.build()
}

/// Returns a copy of `g` with every edge sign flipped.
pub fn negated(g: &SignedGraph) -> SignedGraph {
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for e in g.edges() {
        b.add_edge(e.u, e.v, e.sign.flip())
            .expect("source edges are valid");
    }
    b.build()
}

/// Returns the subgraph induced by `nodes` (kept node ids are renumbered
/// densely; the mapping `new -> old` is returned alongside).
pub fn induced_subgraph(g: &SignedGraph, nodes: &[NodeId]) -> (SignedGraph, Vec<NodeId>) {
    let mut new_of_old = vec![u32::MAX; g.node_count()];
    let mut old_of_new = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if v.index() < g.node_count() && new_of_old[v.index()] == u32::MAX {
            new_of_old[v.index()] = old_of_new.len() as u32;
            old_of_new.push(v);
        }
    }
    let mut b = GraphBuilder::with_nodes(old_of_new.len());
    for e in g.edges() {
        let (nu, nv) = (new_of_old[e.u.index()], new_of_old[e.v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(NodeId::new(nu as usize), NodeId::new(nv as usize), e.sign)
                .expect("induced edge valid");
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;

    fn mixed() -> SignedGraph {
        from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (2, 3, Sign::Positive),
            (3, 0, Sign::Negative),
        ])
    }

    #[test]
    fn ignore_signs_keeps_all_edges_positive() {
        let g = mixed();
        let u = to_unsigned(&g, UnsignedTransform::IgnoreSigns);
        assert_eq!(u.node_count(), 4);
        assert_eq!(u.edge_count(), 4);
        assert_eq!(u.negative_edge_count(), 0);
        assert!(u.has_positive_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn delete_negative_drops_negative_edges() {
        let g = mixed();
        let u = to_unsigned(&g, UnsignedTransform::DeleteNegative);
        assert_eq!(u.node_count(), 4);
        assert_eq!(u.edge_count(), 2);
        assert!(!u.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(u.has_positive_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn labels() {
        assert_eq!(UnsignedTransform::IgnoreSigns.label(), "Ignore sign");
        assert_eq!(UnsignedTransform::DeleteNegative.label(), "Delete negative");
    }

    #[test]
    fn sign_filtered_partitions_edges() {
        let g = mixed();
        let pos = sign_filtered(&g, Sign::Positive);
        let neg = sign_filtered(&g, Sign::Negative);
        assert_eq!(pos.edge_count() + neg.edge_count(), g.edge_count());
        assert_eq!(pos.negative_edge_count(), 0);
        assert_eq!(neg.positive_edge_count(), 0);
    }

    #[test]
    fn negation_is_involution() {
        let g = mixed();
        let gg = negated(&negated(&g));
        assert_eq!(gg.edge_count(), g.edge_count());
        for e in g.edges() {
            assert_eq!(gg.sign(e.u, e.v), Some(e.sign));
        }
        assert_eq!(negated(&g).negative_edge_count(), g.positive_edge_count());
    }

    #[test]
    fn induced_subgraph_restricts_edges() {
        let g = mixed();
        let (sub, map) = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // (0,1)+ and (1,2)-
        assert_eq!(map.len(), 3);
        // Duplicate and out-of-range requests are ignored.
        let (sub2, map2) = induced_subgraph(&g, &[NodeId::new(1), NodeId::new(1), NodeId::new(99)]);
        assert_eq!(sub2.node_count(), 1);
        assert_eq!(map2, vec![NodeId::new(1)]);
        assert_eq!(sub2.edge_count(), 0);
    }
}
