//! Error types for graph construction and I/O.

use std::fmt;

use crate::graph::NodeId;

/// Errors produced while building, mutating or parsing signed graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referenced a node id that does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// A self-loop `(u, u)` was supplied; the paper's graphs are simple.
    SelfLoop(NodeId),
    /// The edge `(u, v)` already exists (possibly with a different sign).
    DuplicateEdge(NodeId, NodeId),
    /// The edge `(u, v)` was expected to exist but does not.
    MissingEdge(NodeId, NodeId),
    /// A parse error while reading an edge-list file.
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error, carried as a string so the error type stays `Clone + Eq`.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "node {} is out of bounds for a graph with {} nodes",
                node.index(),
                node_count
            ),
            GraphError::SelfLoop(u) => {
                write!(f, "self-loop on node {} is not allowed", u.index())
            }
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "edge ({}, {}) already exists", u.index(), v.index())
            }
            GraphError::MissingEdge(u, v) => {
                write!(f, "edge ({}, {}) does not exist", u.index(), v.index())
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds {
            node: NodeId::new(5),
            node_count: 3,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("3"));

        let e = GraphError::SelfLoop(NodeId::new(2));
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::DuplicateEdge(NodeId::new(0), NodeId::new(1));
        assert!(e.to_string().contains("already exists"));

        let e = GraphError::MissingEdge(NodeId::new(0), NodeId::new(1));
        assert!(e.to_string().contains("does not exist"));

        let e = GraphError::Parse {
            line: 7,
            message: "bad sign".into(),
        };
        assert!(e.to_string().contains("line 7"));

        let io: GraphError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
