//! # signed-graph
//!
//! An undirected **signed graph** substrate: the data structure every
//! algorithm in the *Forming Compatible Teams in Signed Networks*
//! (Kouvatis et al., EDBT 2020) reproduction is built on.
//!
//! A signed graph `G = (V, E)` has edges labelled `+1` (friendship /
//! successful collaboration) or `-1` (foe / contentious relationship).
//! This crate provides:
//!
//! * [`SignedGraph`] — adjacency-list storage with O(1) sign lookup,
//!   built through [`GraphBuilder`].
//! * [`csr::CsrGraph`] — a compressed-sparse-row view used by the hot
//!   traversal loops (read-only except for in-place sign patching).
//! * [`delta`] — live edge mutations ([`delta::EdgeMutation`]): in-place
//!   insert/remove/sign-flip patching of a built graph, the substrate of the
//!   serving engine's incremental updates.
//! * [`traversal`] — breadth-first searches, single-source shortest path
//!   lengths, eccentricities and (exact or sampled) diameter.
//! * [`balance`] — structural-balance primitives: sign of a path, balance of
//!   an induced subgraph (Harary two-colouring), frustration counting.
//! * [`components`] — connected components and largest-component extraction.
//! * [`transform`] — the unsigned views used by the paper's Table 3 baseline
//!   (ignore signs / delete negative edges).
//! * [`generators`] — random signed-graph models used to emulate the paper's
//!   datasets (Erdős–Rényi, planted balanced partitions, small-world rings,
//!   preferential attachment) with controllable negative-edge fractions.
//! * [`io`] — a plain-text edge-list format compatible with the SNAP signed
//!   network dumps (`u v sign` per line, `#` comments).
//!
//! # Example
//!
//! ```
//! use signed_graph::{GraphBuilder, Sign};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node();
//! let c = b.add_node();
//! let d = b.add_node();
//! b.add_edge(a, c, Sign::Positive).unwrap();
//! b.add_edge(c, d, Sign::Negative).unwrap();
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 2);
//! assert_eq!(g.sign(a, c), Some(Sign::Positive));
//! assert_eq!(g.sign(a, d), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod builder;
pub mod components;
pub mod csr;
pub mod delta;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod sign;
pub mod transform;
pub mod traversal;

pub use builder::GraphBuilder;
pub use delta::{EdgeChange, EdgeMutation, MutationEffect};
pub use error::GraphError;
pub use graph::{Edge, NodeId, SignedGraph};
pub use sign::Sign;
