//! Random signed-graph generators.
//!
//! The paper evaluates on three real signed social networks (Slashdot,
//! Epinions, Wikipedia). Those raw dumps are not redistributable with this
//! repository, so the dataset crate emulates them with the generators in this
//! module, matched to the published summary statistics (node count, edge
//! count, negative-edge fraction, rough diameter). See `DESIGN.md` for the
//! substitution rationale.
//!
//! The central generator is [`social_network`], a configurable model that
//! produces a *connected* signed graph with:
//!
//! * a heavy-tailed degree distribution (preferential attachment for the
//!   non-tree edges),
//! * a tunable diameter via the `locality` of the underlying spanning tree,
//! * signs drawn from a latent camp model so that the graph is *mostly*
//!   structurally balanced with controllable noise — the property that makes
//!   structural-balance-based compatibility meaningful on real networks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// Configuration of the [`social_network`] generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialNetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of edges (must be at least `nodes - 1`; the generator
    /// always produces a connected graph).
    pub edges: usize,
    /// Desired fraction of negative edges in `[0, 1]`.
    pub negative_fraction: f64,
    /// Probability that an edge's sign follows the latent camp structure
    /// (same camp ⇒ positive, different camps ⇒ negative). The remainder is
    /// drawn independently with `negative_fraction`. Real signed networks are
    /// largely but not perfectly balanced, so values around 0.8–0.95 are
    /// realistic.
    pub balance_bias: f64,
    /// Number of latent camps (≥ 1). Two camps produce a classically
    /// balanceable structure; more camps emulate clusterable networks.
    pub camps: usize,
    /// Spanning-tree locality in `(0, 1]`: each new node attaches to a node
    /// chosen among the previous `ceil(locality · i)` nodes. Smaller values
    /// stretch the tree and increase the diameter; `1.0` yields a random
    /// recursive tree with logarithmic diameter.
    pub locality: f64,
    /// Preferential-attachment strength for non-tree edges in `[0, 1]`:
    /// probability that an endpoint is chosen proportionally to degree rather
    /// than uniformly.
    pub preferential: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SocialNetworkConfig {
    fn default() -> Self {
        SocialNetworkConfig {
            nodes: 1000,
            edges: 5000,
            negative_fraction: 0.2,
            balance_bias: 0.9,
            camps: 2,
            locality: 0.5,
            preferential: 0.7,
            seed: 42,
        }
    }
}

/// Generates a connected signed social-network-like graph. See
/// [`SocialNetworkConfig`] for the knobs.
///
/// # Panics
/// Panics if `nodes == 0` or `edges < nodes - 1`.
pub fn social_network(cfg: &SocialNetworkConfig) -> SignedGraph {
    assert!(cfg.nodes > 0, "graph must have at least one node");
    assert!(
        cfg.nodes == 1 || cfg.edges >= cfg.nodes - 1,
        "need at least n-1 edges for connectivity (n = {}, m = {})",
        cfg.nodes,
        cfg.edges
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;

    // Latent camp of every node.
    let camps = cfg.camps.max(1);
    let camp: Vec<usize> = (0..n).map(|_| rng.gen_range(0..camps)).collect();

    let mut b = GraphBuilder::with_nodes(n);
    let mut degree = vec![0usize; n];
    // Endpoint pool for preferential attachment: node v appears degree(v) times.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(cfg.edges * 2);

    let add_edge = |b: &mut GraphBuilder,
                    degree: &mut Vec<usize>,
                    endpoint_pool: &mut Vec<u32>,
                    rng: &mut StdRng,
                    u: usize,
                    v: usize|
     -> bool {
        let (u, v) = (NodeId::new(u), NodeId::new(v));
        if u == v || b.has_edge(u, v) {
            return false;
        }
        let sign = draw_sign(rng, cfg, camp[u.index()], camp[v.index()]);
        b.add_edge(u, v, sign).expect("checked for duplicates");
        degree[u.index()] += 1;
        degree[v.index()] += 1;
        endpoint_pool.push(u.index() as u32);
        endpoint_pool.push(v.index() as u32);
        true
    };

    // 1. Connected backbone: node i attaches to one of the previous
    //    ceil(locality * i) nodes (window anchored at i-1 going backwards).
    let locality = cfg.locality.clamp(1e-6, 1.0);
    for i in 1..n {
        let window = ((i as f64 * locality).ceil() as usize).clamp(1, i);
        let lo = i - window;
        let target = rng.gen_range(lo..i);
        add_edge(&mut b, &mut degree, &mut endpoint_pool, &mut rng, i, target);
    }

    // 2. Remaining edges: mixture of preferential attachment and uniform pairs.
    let mut attempts = 0usize;
    let max_attempts = cfg.edges.saturating_mul(50) + 1000;
    while b.edge_count() < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let u = pick_endpoint(&mut rng, cfg.preferential, &endpoint_pool, n);
        let v = pick_endpoint(&mut rng, cfg.preferential, &endpoint_pool, n);
        add_edge(&mut b, &mut degree, &mut endpoint_pool, &mut rng, u, v);
    }

    let mut g = b.build();
    g = adjust_negative_fraction(g, cfg.negative_fraction, cfg.seed ^ 0xD1CE_F00D);
    g
}

fn pick_endpoint(rng: &mut StdRng, preferential: f64, pool: &[u32], n: usize) -> usize {
    if !pool.is_empty() && rng.gen_bool(preferential.clamp(0.0, 1.0)) {
        pool[rng.gen_range(0..pool.len())] as usize
    } else {
        rng.gen_range(0..n)
    }
}

fn draw_sign(rng: &mut StdRng, cfg: &SocialNetworkConfig, camp_u: usize, camp_v: usize) -> Sign {
    if rng.gen_bool(cfg.balance_bias.clamp(0.0, 1.0)) {
        if camp_u == camp_v {
            Sign::Positive
        } else {
            Sign::Negative
        }
    } else if rng.gen_bool(cfg.negative_fraction.clamp(0.0, 1.0)) {
        Sign::Negative
    } else {
        Sign::Positive
    }
}

/// Rebuilds `g` with a minimal set of random sign flips so that the fraction
/// of negative edges approximately matches `target` (within one edge).
/// Deterministic for a fixed `seed`.
pub fn adjust_negative_fraction(g: SignedGraph, target: f64, seed: u64) -> SignedGraph {
    let m = g.edge_count();
    if m == 0 {
        return g;
    }
    let target = target.clamp(0.0, 1.0);
    let desired_neg = (target * m as f64).round() as usize;
    let current_neg = g.negative_edge_count();
    if desired_neg == current_neg {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<_> = g.edges().to_vec();
    if desired_neg > current_neg {
        // Flip some positive edges to negative.
        let mut pos_idx: Vec<usize> = edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.sign.is_positive())
            .map(|(i, _)| i)
            .collect();
        pos_idx.shuffle(&mut rng);
        for &i in pos_idx.iter().take(desired_neg - current_neg) {
            edges[i].sign = Sign::Negative;
        }
    } else {
        let mut neg_idx: Vec<usize> = edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.sign.is_negative())
            .map(|(i, _)| i)
            .collect();
        neg_idx.shuffle(&mut rng);
        for &i in neg_idx.iter().take(current_neg - desired_neg) {
            edges[i].sign = Sign::Positive;
        }
    }
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for e in &edges {
        b.add_edge(e.u, e.v, e.sign)
            .expect("edges come from a valid graph");
    }
    b.build()
}

/// Erdős–Rényi style signed graph `G(n, m)`: `m` distinct random edges, each
/// negative with probability `negative_fraction`. The result is not
/// necessarily connected.
pub fn erdos_renyi_signed(n: usize, m: usize, negative_fraction: f64, seed: u64) -> SignedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_nodes(n);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(100) + 1000;
    while b.edge_count() < m && attempts < max_attempts {
        attempts += 1;
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let (u, v) = (NodeId::new(u), NodeId::new(v));
        if u == v || b.has_edge(u, v) {
            continue;
        }
        let sign = if rng.gen_bool(negative_fraction.clamp(0.0, 1.0)) {
            Sign::Negative
        } else {
            Sign::Positive
        };
        b.add_edge(u, v, sign).expect("checked");
    }
    b.build()
}

/// Complete signed graph on `n` nodes with camp-structured signs: nodes are
/// split into `camps` groups round-robin; intra-camp edges are positive and
/// inter-camp edges negative. With `camps <= 2` the result is perfectly
/// structurally balanced.
pub fn complete_camped(n: usize, camps: usize, seed: u64) -> SignedGraph {
    let camps = camps.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut camp: Vec<usize> = (0..n).map(|i| i % camps).collect();
    camp.shuffle(&mut rng);
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let sign = if camp[u] == camp[v] {
                Sign::Positive
            } else {
                Sign::Negative
            };
            b.add_edge(NodeId::new(u), NodeId::new(v), sign)
                .expect("fresh edge");
        }
    }
    b.build()
}

/// Planted-partition signed graph: `camps` groups of roughly equal size,
/// within-group edges appear with probability `p_in` (positive), across-group
/// edges with probability `p_out` (negative); each sign is then flipped with
/// probability `noise`, producing a controllably unbalanced graph.
pub fn planted_partition(
    n: usize,
    camps: usize,
    p_in: f64,
    p_out: f64,
    noise: f64,
    seed: u64,
) -> SignedGraph {
    let camps = camps.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let camp: Vec<usize> = (0..n).map(|i| i % camps).collect();
    let mut b = GraphBuilder::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = camp[u] == camp[v];
            let p = if same { p_in } else { p_out };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let mut sign = if same { Sign::Positive } else { Sign::Negative };
                if rng.gen_bool(noise.clamp(0.0, 1.0)) {
                    sign = sign.flip();
                }
                b.add_edge(NodeId::new(u), NodeId::new(v), sign)
                    .expect("fresh edge");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn social_network_is_connected_and_sized() {
        let cfg = SocialNetworkConfig {
            nodes: 300,
            edges: 900,
            negative_fraction: 0.25,
            seed: 7,
            ..Default::default()
        };
        let g = social_network(&cfg);
        assert_eq!(g.node_count(), 300);
        assert!(g.edge_count() >= 299, "must contain a spanning tree");
        assert!(g.edge_count() <= 900);
        assert!(is_connected(&g));
        let frac = g.negative_edge_fraction();
        assert!(
            (frac - 0.25).abs() < 0.01,
            "negative fraction {frac} not near 0.25"
        );
    }

    #[test]
    fn social_network_is_deterministic() {
        let cfg = SocialNetworkConfig {
            nodes: 120,
            edges: 400,
            seed: 99,
            ..Default::default()
        };
        let g1 = social_network(&cfg);
        let g2 = social_network(&cfg);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn locality_controls_diameter() {
        let tight = social_network(&SocialNetworkConfig {
            nodes: 400,
            edges: 399,
            locality: 1.0,
            negative_fraction: 0.0,
            seed: 3,
            ..Default::default()
        });
        let stretched = social_network(&SocialNetworkConfig {
            nodes: 400,
            edges: 399,
            locality: 0.02,
            negative_fraction: 0.0,
            seed: 3,
            ..Default::default()
        });
        let d_tight = crate::traversal::exact_diameter(&tight);
        let d_stretched = crate::traversal::exact_diameter(&stretched);
        assert!(
            d_stretched > d_tight,
            "low locality should stretch the tree: {d_stretched} vs {d_tight}"
        );
    }

    #[test]
    fn adjust_negative_fraction_hits_target() {
        let g = erdos_renyi_signed(100, 500, 0.5, 1);
        let g = adjust_negative_fraction(g, 0.1, 2);
        let m = g.edge_count() as f64;
        assert!((g.negative_edge_count() as f64 - 0.1 * m).abs() <= 1.0);
        // Increasing direction too.
        let g = adjust_negative_fraction(g, 0.9, 3);
        assert!((g.negative_edge_count() as f64 - 0.9 * m).abs() <= 1.0);
    }

    #[test]
    fn erdos_renyi_edge_count_and_bounds() {
        let g = erdos_renyi_signed(50, 200, 0.3, 5);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
        // Requesting more edges than possible caps at the complete graph.
        let g = erdos_renyi_signed(5, 100, 0.0, 5);
        assert_eq!(g.edge_count(), 10);
        let empty = erdos_renyi_signed(1, 10, 0.5, 5);
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn complete_camped_two_camps_is_balanced() {
        let g = complete_camped(10, 2, 11);
        assert_eq!(g.edge_count(), 45);
        assert!(crate::balance::is_balanced(&g));
        // Three camps: a triangle with one node in each camp is all-negative
        // → unbalanced.
        let g3 = complete_camped(9, 3, 11);
        assert!(!crate::balance::is_balanced(&g3));
    }

    #[test]
    fn planted_partition_noise_zero_is_balanced_for_two_camps() {
        let g = planted_partition(40, 2, 0.4, 0.3, 0.0, 13);
        assert!(crate::balance::is_balanced(&g));
        let noisy = planted_partition(40, 2, 0.4, 0.3, 0.3, 13);
        // With noise, some frustration should typically appear.
        assert!(crate::balance::greedy_frustration_index(&noisy) > 0);
    }
}
