//! Incremental construction of [`SignedGraph`]s.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{Edge, Neighbor, NodeId, SignedGraph};
use crate::sign::Sign;

/// A mutable builder for [`SignedGraph`].
///
/// The builder enforces the invariants the paper assumes: the graph is
/// simple (no self-loops, no parallel edges) and undirected. Duplicate edge
/// insertions are rejected with [`GraphError::DuplicateEdge`] so that a
/// dataset loader cannot silently overwrite a sign; use
/// [`GraphBuilder::add_or_update_edge`] when overwrite semantics are wanted
/// (e.g. when a raw dataset lists both directions of an edge).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<Neighbor>>,
    edges: Vec<Edge>,
    edge_index: HashMap<(u32, u32), u32>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_index: HashMap::new(),
        }
    }

    /// Current number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Current number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adjacency.len());
        self.adjacency.push(Vec::new());
        id
    }

    /// Ensures ids `0..=node.index()` all exist, growing the node set if
    /// needed. Convenient when reading edge lists with arbitrary ids.
    pub fn ensure_node(&mut self, node: NodeId) {
        if node.index() >= self.adjacency.len() {
            self.adjacency.resize(node.index() + 1, Vec::new());
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.adjacency.len() {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.adjacency.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected signed edge `(u, v, sign)`.
    ///
    /// # Errors
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint does not exist.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, sign: Sign) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = canonical(u, v);
        if self.edge_index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.insert_edge(u, v, sign, key);
        Ok(())
    }

    /// Adds edge `(u, v, sign)`, overwriting the sign if the edge already
    /// exists. Returns `true` if a new edge was created, `false` if an
    /// existing edge's sign was updated (or already matched).
    ///
    /// Self-loops are silently ignored (returns `false`), which matches how
    /// the SNAP dumps are commonly cleaned.
    pub fn add_or_update_edge(&mut self, u: NodeId, v: NodeId, sign: Sign) -> bool {
        self.ensure_node(u);
        self.ensure_node(v);
        if u == v {
            return false;
        }
        let key = canonical(u, v);
        if let Some(&idx) = self.edge_index.get(&key) {
            let idx = idx as usize;
            if self.edges[idx].sign != sign {
                self.edges[idx].sign = sign;
                // Update both adjacency entries.
                for (a, b) in [(u, v), (v, u)] {
                    for n in &mut self.adjacency[a.index()] {
                        if n.node == b {
                            n.sign = sign;
                        }
                    }
                }
            }
            false
        } else {
            self.insert_edge(u, v, sign, key);
            true
        }
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId, sign: Sign, key: (u32, u32)) {
        let idx = self.edges.len() as u32;
        self.edges.push(Edge::new(u, v, sign));
        self.edge_index.insert(key, idx);
        self.adjacency[u.index()].push(Neighbor { node: v, sign });
        self.adjacency[v.index()].push(Neighbor { node: u, sign });
    }

    /// `true` if the edge `(u, v)` (either direction) has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_index.contains_key(&canonical(u, v))
    }

    /// Finalises the builder into an immutable [`SignedGraph`].
    ///
    /// Adjacency lists are sorted by neighbour id so traversal order is
    /// deterministic regardless of insertion order.
    pub fn build(mut self) -> SignedGraph {
        for adj in &mut self.adjacency {
            adj.sort_by_key(|n| n.node.index());
        }
        SignedGraph::from_parts(self.adjacency, self.edges)
    }
}

#[inline]
fn canonical(u: NodeId, v: NodeId) -> (u32, u32) {
    let (a, b) = (u.index() as u32, v.index() as u32);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Builds a graph directly from an iterator of `(u, v, sign)` index triples,
/// growing the node set as needed. Duplicate edges keep the first sign seen.
pub fn from_edge_triples<I>(triples: I) -> SignedGraph
where
    I: IntoIterator<Item = (usize, usize, Sign)>,
{
    let mut b = GraphBuilder::new();
    for (u, v, s) in triples {
        let (u, v) = (NodeId::new(u), NodeId::new(v));
        b.ensure_node(u);
        b.ensure_node(v);
        if u != v && !b.has_edge(u, v) {
            // Safe: nodes ensured, no self-loop, no duplicate.
            b.add_edge(u, v, s).expect("invariants checked");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        assert_eq!(b.node_count(), 2);
        b.add_edge(u, v, Sign::Negative).unwrap();
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(v, u));
        let g = b.build();
        assert_eq!(g.sign(u, v), Some(Sign::Negative));
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = GraphBuilder::with_nodes(2);
        let (u, v) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(
            b.add_edge(u, u, Sign::Positive),
            Err(GraphError::SelfLoop(u))
        );
        b.add_edge(u, v, Sign::Positive).unwrap();
        assert_eq!(
            b.add_edge(v, u, Sign::Negative),
            Err(GraphError::DuplicateEdge(v, u))
        );
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = GraphBuilder::with_nodes(1);
        let err = b.add_edge(NodeId::new(0), NodeId::new(5), Sign::Positive);
        assert!(matches!(err, Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    fn add_or_update_overwrites_sign_everywhere() {
        let mut b = GraphBuilder::new();
        assert!(b.add_or_update_edge(NodeId::new(0), NodeId::new(3), Sign::Positive));
        assert!(!b.add_or_update_edge(NodeId::new(3), NodeId::new(0), Sign::Negative));
        assert!(!b.add_or_update_edge(NodeId::new(1), NodeId::new(1), Sign::Positive));
        let g = b.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.sign(NodeId::new(0), NodeId::new(3)), Some(Sign::Negative));
        // Adjacency entries agree with the edge record.
        assert_eq!(g.neighbors(NodeId::new(0))[0].sign, Sign::Negative);
        assert_eq!(g.neighbors(NodeId::new(3))[0].sign, Sign::Negative);
    }

    #[test]
    fn ensure_node_grows() {
        let mut b = GraphBuilder::new();
        b.ensure_node(NodeId::new(9));
        assert_eq!(b.node_count(), 10);
        b.ensure_node(NodeId::new(3));
        assert_eq!(b.node_count(), 10);
    }

    #[test]
    fn from_triples_dedups_and_grows() {
        let g = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 0, Sign::Negative), // duplicate, first sign wins
            (2, 2, Sign::Positive), // self loop ignored
            (4, 2, Sign::Negative),
        ]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.sign(NodeId::new(0), NodeId::new(1)), Some(Sign::Positive));
        assert_eq!(g.sign(NodeId::new(2), NodeId::new(4)), Some(Sign::Negative));
    }

    #[test]
    fn build_sorts_adjacency() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId::new(0), NodeId::new(3), Sign::Positive)
            .unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(1), Sign::Positive)
            .unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(2), Sign::Negative)
            .unwrap();
        let g = b.build();
        let order: Vec<usize> = g
            .neighbors(NodeId::new(0))
            .iter()
            .map(|n| n.node.index())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
