//! Plain-text edge-list I/O.
//!
//! The format is the one used by the SNAP signed-network dumps the paper
//! evaluates on: one edge per line, whitespace-separated
//! `source target sign`, where `sign` is any non-zero integer (`1`, `-1`,
//! `+1`, …). Lines starting with `#` are comments. Node ids may be arbitrary
//! non-negative integers; they are compacted to dense [`NodeId`]s and the
//! mapping is returned so skills or labels can be joined back.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// The result of parsing an edge list: the graph plus the mapping from dense
/// node id to the original id appearing in the file.
#[derive(Debug, Clone)]
pub struct ParsedGraph {
    /// The parsed signed graph.
    pub graph: SignedGraph,
    /// `original_ids[v.index()]` is the id of node `v` in the source file.
    pub original_ids: Vec<u64>,
}

impl ParsedGraph {
    /// Looks up the dense node id for an original file id, if present.
    pub fn node_for_original(&self, original: u64) -> Option<NodeId> {
        self.original_ids
            .iter()
            .position(|&o| o == original)
            .map(NodeId::new)
    }
}

/// Parses a signed edge list from any reader. Duplicate edges keep the first
/// sign encountered; self-loops are skipped (matching common SNAP cleaning).
pub fn read_edge_list<R: Read>(reader: R) -> Result<ParsedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();

    let mut intern =
        |raw: u64, builder: &mut GraphBuilder, original_ids: &mut Vec<u64>| -> NodeId {
            *id_map.entry(raw).or_insert_with(|| {
                let id = builder.add_node();
                original_ids.push(raw);
                id
            })
        };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u_raw, v_raw, s_raw) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), Some(s)) => (u, v, s),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("expected `u v sign`, got `{line}`"),
                })
            }
        };
        let parse_id = |t: &str| -> Result<u64, GraphError> {
            t.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid node id `{t}`"),
            })
        };
        let u = parse_id(u_raw)?;
        let v = parse_id(v_raw)?;
        let sign_value =
            s_raw
                .trim_start_matches('+')
                .parse::<i64>()
                .map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("invalid sign `{s_raw}`"),
                })?;
        let sign = Sign::from_value(sign_value).ok_or_else(|| GraphError::Parse {
            line: lineno + 1,
            message: "sign must be non-zero".to_string(),
        })?;
        let un = intern(u, &mut builder, &mut original_ids);
        let vn = intern(v, &mut builder, &mut original_ids);
        if un == vn || builder.has_edge(un, vn) {
            continue;
        }
        builder
            .add_edge(un, vn, sign)
            .expect("nodes interned and duplicates filtered");
    }

    Ok(ParsedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Parses a signed edge list from a string slice.
pub fn read_edge_list_str(s: &str) -> Result<ParsedGraph, GraphError> {
    read_edge_list(s.as_bytes())
}

/// Reads a signed edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<ParsedGraph, GraphError> {
    let file = File::open(path)?;
    read_edge_list(file)
}

/// Writes `g` as a signed edge list (`u v ±1` per line, dense node ids).
pub fn write_edge_list<W: Write>(g: &SignedGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# signed edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    for e in g.edges() {
        writeln!(w, "{}\t{}\t{}", e.u.index(), e.v.index(), e.sign.value())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to a file path in edge-list format.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &SignedGraph, path: P) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_edge_list() {
        let text = "\
# a comment
10 20 1
20 30 -1
// another comment style

30 10 +1
";
        let parsed = read_edge_list_str(text).unwrap();
        let g = &parsed.graph;
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(parsed.original_ids.len(), 3);
        let n10 = parsed.node_for_original(10).unwrap();
        let n20 = parsed.node_for_original(20).unwrap();
        let n30 = parsed.node_for_original(30).unwrap();
        assert_eq!(g.sign(n10, n20), Some(Sign::Positive));
        assert_eq!(g.sign(n20, n30), Some(Sign::Negative));
        assert_eq!(g.sign(n30, n10), Some(Sign::Positive));
        assert_eq!(parsed.node_for_original(99), None);
    }

    #[test]
    fn skips_self_loops_and_duplicates() {
        let text = "1 1 1\n1 2 1\n2 1 -1\n";
        let parsed = read_edge_list_str(text).unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
        let a = parsed.node_for_original(1).unwrap();
        let b = parsed.node_for_original(2).unwrap();
        // First sign wins.
        assert_eq!(parsed.graph.sign(a, b), Some(Sign::Positive));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_edge_list_str("1 2"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list_str("a 2 1"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_edge_list_str("1 2 zero"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_edge_list_str("1 2 0"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn round_trip() {
        let g = crate::generators::erdos_renyi_signed(30, 80, 0.3, 17);
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        // Node count may differ if some nodes are isolated (they do not appear
        // in the edge list), but every edge must round-trip with its sign.
        assert_eq!(parsed.graph.edge_count(), g.edge_count());
        for e in g.edges() {
            let u = parsed.node_for_original(e.u.index() as u64).unwrap();
            let v = parsed.node_for_original(e.v.index() as u64).unwrap();
            assert_eq!(parsed.graph.sign(u, v), Some(e.sign));
        }
    }

    #[test]
    fn file_round_trip() {
        let g = crate::generators::erdos_renyi_signed(10, 20, 0.5, 3);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("signed_graph_io_test_{}.txt", std::process::id()));
        write_edge_list_file(&g, &path).unwrap();
        let parsed = read_edge_list_file(&path).unwrap();
        assert_eq!(parsed.graph.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/not/here.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
