//! Edge signs and sign arithmetic.
//!
//! The paper labels every edge with `+1` or `-1` and defines the sign of a
//! path as the product of its edge signs. [`Sign`] captures that algebra.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Mul;

/// The label of an edge in a signed graph: positive (friend) or negative (foe).
///
/// `Sign` forms the multiplicative group {+1, -1}; multiplying signs composes
/// them along a path, which is exactly how the paper defines the sign of a
/// path (`sign(P) = prod sign(e)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sign {
    /// A `+1` edge: friendship / successful collaboration.
    Positive,
    /// A `-1` edge: a contentious (foe) relationship.
    Negative,
}

impl Sign {
    /// Returns the sign as the integer the paper uses (`+1` or `-1`).
    #[inline]
    pub fn value(self) -> i8 {
        match self {
            Sign::Positive => 1,
            Sign::Negative => -1,
        }
    }

    /// Builds a sign from any non-zero integer-like value.
    ///
    /// Returns `None` for zero, mirroring the paper's edge label domain
    /// `{+1, -1}`.
    #[inline]
    pub fn from_value(v: i64) -> Option<Self> {
        match v {
            v if v > 0 => Some(Sign::Positive),
            v if v < 0 => Some(Sign::Negative),
            _ => None,
        }
    }

    /// `true` for [`Sign::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Sign::Positive)
    }

    /// `true` for [`Sign::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        matches!(self, Sign::Negative)
    }

    /// The opposite sign.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }

    /// Composes this sign with another, as when extending a path by one edge.
    #[inline]
    pub fn compose(self, other: Sign) -> Sign {
        if self == other {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }

    /// The sign of a product of an iterator of signs (the sign of a path).
    ///
    /// An empty iterator yields [`Sign::Positive`], the group identity; this
    /// matches the convention that the trivial path from a node to itself is
    /// positive.
    pub fn product<I: IntoIterator<Item = Sign>>(iter: I) -> Sign {
        iter.into_iter()
            .fold(Sign::Positive, |acc, s| acc.compose(s))
    }
}

impl Mul for Sign {
    type Output = Sign;

    #[inline]
    fn mul(self, rhs: Sign) -> Sign {
        self.compose(rhs)
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Positive => write!(f, "+"),
            Sign::Negative => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        assert_eq!(Sign::Positive.value(), 1);
        assert_eq!(Sign::Negative.value(), -1);
        assert_eq!(Sign::from_value(1), Some(Sign::Positive));
        assert_eq!(Sign::from_value(-1), Some(Sign::Negative));
        assert_eq!(Sign::from_value(7), Some(Sign::Positive));
        assert_eq!(Sign::from_value(-3), Some(Sign::Negative));
        assert_eq!(Sign::from_value(0), None);
    }

    #[test]
    fn flip_is_involution() {
        assert_eq!(Sign::Positive.flip(), Sign::Negative);
        assert_eq!(Sign::Negative.flip(), Sign::Positive);
        assert_eq!(Sign::Positive.flip().flip(), Sign::Positive);
    }

    #[test]
    fn composition_group_table() {
        use Sign::*;
        assert_eq!(Positive * Positive, Positive);
        assert_eq!(Positive * Negative, Negative);
        assert_eq!(Negative * Positive, Negative);
        assert_eq!(Negative * Negative, Positive);
    }

    #[test]
    fn product_of_path_signs() {
        use Sign::*;
        assert_eq!(Sign::product([]), Positive);
        assert_eq!(Sign::product([Negative]), Negative);
        assert_eq!(Sign::product([Negative, Negative]), Positive);
        assert_eq!(Sign::product([Negative, Negative, Negative]), Negative);
        assert_eq!(Sign::product([Positive, Negative, Positive]), Negative);
    }

    #[test]
    fn display() {
        assert_eq!(Sign::Positive.to_string(), "+");
        assert_eq!(Sign::Negative.to_string(), "-");
    }

    #[test]
    fn predicates() {
        assert!(Sign::Positive.is_positive());
        assert!(!Sign::Positive.is_negative());
        assert!(Sign::Negative.is_negative());
        assert!(!Sign::Negative.is_positive());
    }
}
