//! The core [`SignedGraph`] adjacency-list representation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::delta::{EdgeChange, EdgeMutation, MutationEffect};
use crate::error::GraphError;
use crate::sign::Sign;

/// A compact node identifier: an index into the graph's node table.
///
/// Node ids are dense (`0..node_count`) which lets every algorithm in the
/// workspace use flat `Vec`-indexed per-node state instead of hash maps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId::new(v)
    }
}

/// An undirected signed edge `(u, v, sign)` with `u < v` in storage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint (the smaller id in canonical storage order).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The label of the edge.
    pub sign: Sign,
}

impl Edge {
    /// Creates a canonical edge with endpoints sorted by id.
    pub fn new(u: NodeId, v: NodeId, sign: Sign) -> Self {
        if u.index() <= v.index() {
            Edge { u, v, sign }
        } else {
            Edge { u: v, v: u, sign }
        }
    }

    /// Returns the endpoint different from `w`, or `None` if `w` is not an
    /// endpoint of this edge.
    pub fn other(&self, w: NodeId) -> Option<NodeId> {
        if w == self.u {
            Some(self.v)
        } else if w == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

/// A neighbour entry in an adjacency list: the neighbour id and the sign of
/// the connecting edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent node.
    pub node: NodeId,
    /// The sign of the edge leading to it.
    pub sign: Sign,
}

/// An undirected signed graph stored as adjacency lists.
///
/// The structure is immutable once built (use [`crate::GraphBuilder`]); all
/// the paper's algorithms are read-only over the graph, so immutability keeps
/// the hot paths simple and lets the graph be shared freely across threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignedGraph {
    adjacency: Vec<Vec<Neighbor>>,
    edges: Vec<Edge>,
    /// (min(u,v), max(u,v)) -> index into `edges`
    edge_index: HashMap<(u32, u32), u32>,
    positive_edges: usize,
    negative_edges: usize,
}

impl SignedGraph {
    pub(crate) fn from_parts(adjacency: Vec<Vec<Neighbor>>, edges: Vec<Edge>) -> Self {
        let mut edge_index = HashMap::with_capacity(edges.len());
        let mut positive_edges = 0;
        let mut negative_edges = 0;
        for (i, e) in edges.iter().enumerate() {
            edge_index.insert((e.u.index() as u32, e.v.index() as u32), i as u32);
            match e.sign {
                Sign::Positive => positive_edges += 1,
                Sign::Negative => negative_edges += 1,
            }
        }
        SignedGraph {
            adjacency,
            edges,
            edge_index,
            positive_edges,
            negative_edges,
        }
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges in the graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of positive edges.
    #[inline]
    pub fn positive_edge_count(&self) -> usize {
        self.positive_edges
    }

    /// Number of negative edges.
    #[inline]
    pub fn negative_edge_count(&self) -> usize {
        self.negative_edges
    }

    /// Fraction of edges that are negative, in `[0, 1]`. Zero for an empty
    /// edge set.
    pub fn negative_edge_fraction(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.negative_edges as f64 / self.edges.len() as f64
        }
    }

    /// `true` if `node` is a valid id for this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    /// Iterator over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::new)
    }

    /// All edges in canonical order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The neighbours of `node` along with the sign of each incident edge.
    ///
    /// # Panics
    /// Panics if `node` is out of bounds; use [`Self::contains_node`] to check
    /// first when the id comes from untrusted input.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[Neighbor] {
        &self.adjacency[node.index()]
    }

    /// The degree (number of incident edges) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Number of positive edges incident to `node`.
    pub fn positive_degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()]
            .iter()
            .filter(|n| n.sign.is_positive())
            .count()
    }

    /// Number of negative edges incident to `node`.
    pub fn negative_degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()]
            .iter()
            .filter(|n| n.sign.is_negative())
            .count()
    }

    /// The sign of edge `(u, v)`, or `None` if the edge is absent.
    pub fn sign(&self, u: NodeId, v: NodeId) -> Option<Sign> {
        let key = canonical_key(u, v);
        self.edge_index
            .get(&key)
            .map(|&i| self.edges[i as usize].sign)
    }

    /// `true` if `(u, v)` is an edge of either sign.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_index.contains_key(&canonical_key(u, v))
    }

    /// `true` if `(u, v)` is a positive edge.
    pub fn has_positive_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.sign(u, v) == Some(Sign::Positive)
    }

    /// `true` if `(u, v)` is a negative edge.
    pub fn has_negative_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.sign(u, v) == Some(Sign::Negative)
    }

    /// The sign of the walk visiting `path` in order, i.e. the product of the
    /// signs of consecutive edges.
    ///
    /// Returns an error if any consecutive pair is not an edge of the graph.
    /// A path with fewer than two nodes has positive sign (empty product).
    pub fn path_sign(&self, path: &[NodeId]) -> Result<Sign, GraphError> {
        let mut sign = Sign::Positive;
        for w in path.windows(2) {
            match self.sign(w[0], w[1]) {
                Some(s) => sign = sign * s,
                None => return Err(GraphError::MissingEdge(w[0], w[1])),
            }
        }
        Ok(sign)
    }

    /// The total length (number of edges) of the walk `path`. Provided for
    /// symmetry with [`Self::path_sign`].
    pub fn path_len(&self, path: &[NodeId]) -> usize {
        path.len().saturating_sub(1)
    }

    /// Validates that `path` is a simple path in the graph (all consecutive
    /// pairs are edges and no node repeats).
    pub fn is_simple_path(&self, path: &[NodeId]) -> bool {
        if path.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.node_count()];
        for &n in path {
            if !self.contains_node(n) || seen[n.index()] {
                return false;
            }
            seen[n.index()] = true;
        }
        path.windows(2).all(|w| self.has_edge(w[0], w[1]))
    }

    /// Sum of all degrees; equals `2 * edge_count()`. Used as a sanity check
    /// in tests and dataset statistics.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Applies one [`EdgeMutation`] in place — the delta layer behind the
    /// serving engine's live graph updates (see [`crate::delta`]).
    ///
    /// Adjacency lists are patched with binary-search insertion/removal so
    /// they keep the sorted order [`crate::GraphBuilder::build`] established
    /// (traversal determinism depends on it); the edge index and the sign
    /// counters are updated, and nothing derived is recomputed. The node set
    /// never changes: ids outside `0..node_count` are rejected with
    /// [`GraphError::NodeOutOfBounds`], so a failed mutation leaves the
    /// graph untouched.
    pub fn apply_mutation(&mut self, m: &EdgeMutation) -> Result<MutationEffect, GraphError> {
        let (u, v) = m.endpoints();
        for node in [u, v] {
            if !self.contains_node(node) {
                return Err(GraphError::NodeOutOfBounds {
                    node,
                    node_count: self.node_count(),
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = canonical_key(u, v);
        let (u, v) = (NodeId::new(key.0 as usize), NodeId::new(key.1 as usize));
        let existing = self.edge_index.get(&key).copied();
        let change = match (*m, existing) {
            (EdgeMutation::Insert { .. }, Some(_)) => {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            (EdgeMutation::Insert { sign, .. }, None) => {
                let idx = self.edges.len() as u32;
                self.edges.push(Edge::new(u, v, sign));
                self.edge_index.insert(key, idx);
                for (a, b) in [(u, v), (v, u)] {
                    let adj = &mut self.adjacency[a.index()];
                    let pos = adj.partition_point(|n| n.node < b);
                    adj.insert(pos, Neighbor { node: b, sign });
                }
                self.count_sign(sign, 1);
                EdgeChange::Inserted(sign)
            }
            (EdgeMutation::Remove { .. }, None) | (EdgeMutation::SetSign { .. }, None) => {
                return Err(GraphError::MissingEdge(u, v));
            }
            (EdgeMutation::Remove { .. }, Some(idx)) => {
                let removed = self.edges.swap_remove(idx as usize);
                self.edge_index.remove(&key);
                // The swap moved the (previously) last edge into `idx`; its
                // index entry must follow.
                if (idx as usize) < self.edges.len() {
                    let moved = self.edges[idx as usize];
                    self.edge_index
                        .insert((moved.u.index() as u32, moved.v.index() as u32), idx);
                }
                for (a, b) in [(u, v), (v, u)] {
                    let adj = &mut self.adjacency[a.index()];
                    let pos = adj
                        .binary_search_by_key(&b, |n| n.node)
                        .expect("indexed edge has adjacency entries");
                    adj.remove(pos);
                }
                self.count_sign(removed.sign, -1);
                EdgeChange::Removed(removed.sign)
            }
            (EdgeMutation::SetSign { sign, .. }, Some(idx)) => {
                let old = self.edges[idx as usize].sign;
                if old == sign {
                    EdgeChange::Unchanged(sign)
                } else {
                    self.edges[idx as usize].sign = sign;
                    for (a, b) in [(u, v), (v, u)] {
                        let adj = &mut self.adjacency[a.index()];
                        let pos = adj
                            .binary_search_by_key(&b, |n| n.node)
                            .expect("indexed edge has adjacency entries");
                        adj[pos].sign = sign;
                    }
                    self.count_sign(old, -1);
                    self.count_sign(sign, 1);
                    EdgeChange::SignChanged { old, new: sign }
                }
            }
        };
        Ok(MutationEffect { u, v, change })
    }

    fn count_sign(&mut self, sign: Sign, delta: isize) {
        let counter = match sign {
            Sign::Positive => &mut self.positive_edges,
            Sign::Negative => &mut self.negative_edges,
        };
        *counter = counter.checked_add_signed(delta).expect("count underflow");
    }
}

#[inline]
fn canonical_key(u: NodeId, v: NodeId) -> (u32, u32) {
    let (a, b) = (u.index() as u32, v.index() as u32);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> SignedGraph {
        // 0 -+ 1, 1 -- 2, 0 -+ 2
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), Sign::Positive)
            .unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), Sign::Negative)
            .unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(2), Sign::Positive)
            .unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.positive_edge_count(), 2);
        assert_eq!(g.negative_edge_count(), 1);
        assert!((g.negative_edge_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn sign_lookup_is_symmetric() {
        let g = triangle();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert_eq!(g.sign(a, b), Some(Sign::Positive));
        assert_eq!(g.sign(b, a), Some(Sign::Positive));
        assert_eq!(g.sign(b, c), Some(Sign::Negative));
        assert_eq!(g.sign(c, b), Some(Sign::Negative));
        assert!(g.has_positive_edge(a, c));
        assert!(!g.has_negative_edge(a, c));
        assert!(!g.has_edge(a, a));
    }

    #[test]
    fn degrees() {
        let g = triangle();
        for n in g.nodes() {
            assert_eq!(g.degree(n), 2);
        }
        assert_eq!(g.positive_degree(NodeId::new(0)), 2);
        assert_eq!(g.negative_degree(NodeId::new(0)), 0);
        assert_eq!(g.positive_degree(NodeId::new(1)), 1);
        assert_eq!(g.negative_degree(NodeId::new(1)), 1);
    }

    #[test]
    fn path_sign_products() {
        let g = triangle();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert_eq!(g.path_sign(&[a, b]).unwrap(), Sign::Positive);
        assert_eq!(g.path_sign(&[a, b, c]).unwrap(), Sign::Negative);
        assert_eq!(g.path_sign(&[a, c, b]).unwrap(), Sign::Negative);
        assert_eq!(g.path_sign(&[a]).unwrap(), Sign::Positive);
        assert_eq!(g.path_len(&[a, b, c]), 2);
        // Non-edge in path.
        let mut b4 = GraphBuilder::with_nodes(4);
        b4.add_edge(NodeId::new(0), NodeId::new(1), Sign::Positive)
            .unwrap();
        let g4 = b4.build();
        assert!(g4.path_sign(&[NodeId::new(0), NodeId::new(2)]).is_err());
    }

    #[test]
    fn simple_path_validation() {
        let g = triangle();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert!(g.is_simple_path(&[a, b, c]));
        assert!(!g.is_simple_path(&[a, b, a]));
        assert!(!g.is_simple_path(&[]));
        assert!(!g.is_simple_path(&[a, NodeId::new(9)]));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId::new(3), NodeId::new(1), Sign::Negative);
        assert_eq!(e.u, NodeId::new(1));
        assert_eq!(e.v, NodeId::new(3));
        assert_eq!(e.other(NodeId::new(1)), Some(NodeId::new(3)));
        assert_eq!(e.other(NodeId::new(3)), Some(NodeId::new(1)));
        assert_eq!(e.other(NodeId::new(2)), None);
    }

    #[test]
    fn node_id_display_and_conversion() {
        let n: NodeId = 42usize.into();
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "v42");
    }
}
