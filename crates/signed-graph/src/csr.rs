//! Compressed-sparse-row (CSR) view of a [`SignedGraph`].
//!
//! The compatibility oracle runs one signed BFS per source node over the
//! whole graph; a CSR layout keeps the neighbour scan cache-friendly and
//! avoids the per-node `Vec` indirection of the adjacency-list
//! representation. The CSR view is read-only and cheap to share across the
//! worker threads used by the parallel oracle builders.

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// An immutable CSR copy of a signed graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` / `signs` for node `v`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    signs: Vec<Sign>,
    edge_count: usize,
}

impl CsrGraph {
    /// Builds the CSR view from an adjacency-list graph.
    pub fn from_graph(g: &SignedGraph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.degree_sum());
        let mut signs = Vec::with_capacity(g.degree_sum());
        offsets.push(0u32);
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                targets.push(nb.node.index() as u32);
                signs.push(nb.sign);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            signs,
            edge_count: g.edge_count(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, sign)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Sign)> + '_ {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.signs[lo..hi])
            .map(|(&t, &s)| (NodeId::new(t as usize), s))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }
}

impl From<&SignedGraph> for CsrGraph {
    fn from(g: &SignedGraph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;

    #[test]
    fn csr_matches_adjacency() {
        let g = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (2, 3, Sign::Positive),
            (0, 3, Sign::Negative),
            (1, 3, Sign::Positive),
        ]);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_csr: Vec<(usize, Sign)> =
                csr.neighbors(v).map(|(n, s)| (n.index(), s)).collect();
            let from_adj: Vec<(usize, Sign)> = g
                .neighbors(v)
                .iter()
                .map(|n| (n.node.index(), n.sign))
                .collect();
            assert_eq!(from_csr, from_adj);
        }
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::with_nodes(0).build();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = crate::builder::GraphBuilder::with_nodes(3).build();
        let csr: CsrGraph = (&g).into();
        for v in csr.nodes() {
            assert_eq!(csr.degree(v), 0);
            assert_eq!(csr.neighbors(v).count(), 0);
        }
    }
}
