//! Compressed-sparse-row (CSR) view of a [`SignedGraph`].
//!
//! The compatibility oracle runs one signed BFS per source node over the
//! whole graph; a CSR layout keeps the neighbour scan cache-friendly and
//! avoids the per-node `Vec` indirection of the adjacency-list
//! representation. The CSR view is cheap to share across the worker threads
//! used by the parallel oracle builders, and read-only with one exception:
//! a live **sign flip** ([`CsrGraph::set_sign`]) patches the sign lane in
//! place — the `offsets`/`targets` structure is untouched, so the delta
//! layer ([`crate::delta`]) can propagate `edge_set_sign` mutations without
//! rebuilding the CSR. Edge inserts and removals restructure the offsets
//! and need a rebuild ([`CsrGraph::from_graph`]).

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// A CSR copy of a signed graph (read-only except for in-place sign
/// patching).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` / `signs` for node `v`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    signs: Vec<Sign>,
    edge_count: usize,
}

impl CsrGraph {
    /// Builds the CSR view from an adjacency-list graph.
    pub fn from_graph(g: &SignedGraph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.degree_sum());
        let mut signs = Vec::with_capacity(g.degree_sum());
        offsets.push(0u32);
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                targets.push(nb.node.index() as u32);
                signs.push(nb.sign);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            signs,
            edge_count: g.edge_count(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(neighbor, sign)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Sign)> + '_ {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.signs[lo..hi])
            .map(|(&t, &s)| (NodeId::new(t as usize), s))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Patches the sign of the existing edge `(u, v)` in place — both
    /// directed entries — without touching the `offsets`/`targets`
    /// structure. This is how an `edge_set_sign` mutation propagates to CSR
    /// views without the `O(|V| + |E|)` rebuild that inserts and removals
    /// need. Returns [`GraphError::MissingEdge`] when `(u, v)` is not an
    /// edge of this view (the view would silently drift from its graph
    /// otherwise) and [`GraphError::NodeOutOfBounds`] for ids outside the
    /// node set.
    pub fn set_sign(&mut self, u: NodeId, v: NodeId, sign: Sign) -> Result<(), GraphError> {
        for node in [u, v] {
            if node.index() >= self.node_count() {
                return Err(GraphError::NodeOutOfBounds {
                    node,
                    node_count: self.node_count(),
                });
            }
        }
        for (a, b) in [(u, v), (v, u)] {
            let lo = self.offsets[a.index()] as usize;
            let hi = self.offsets[a.index() + 1] as usize;
            // Neighbour targets are sorted (the builder sorts adjacency).
            let pos = self.targets[lo..hi]
                .binary_search(&(b.index() as u32))
                .map_err(|_| GraphError::MissingEdge(u, v))?;
            self.signs[lo + pos] = sign;
        }
        Ok(())
    }
}

impl From<&SignedGraph> for CsrGraph {
    fn from(g: &SignedGraph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;

    #[test]
    fn csr_matches_adjacency() {
        let g = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (2, 3, Sign::Positive),
            (0, 3, Sign::Negative),
            (1, 3, Sign::Positive),
        ]);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_csr: Vec<(usize, Sign)> =
                csr.neighbors(v).map(|(n, s)| (n.index(), s)).collect();
            let from_adj: Vec<(usize, Sign)> = g
                .neighbors(v)
                .iter()
                .map(|n| (n.node.index(), n.sign))
                .collect();
            assert_eq!(from_csr, from_adj);
        }
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::with_nodes(0).build();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = crate::builder::GraphBuilder::with_nodes(3).build();
        let csr: CsrGraph = (&g).into();
        for v in csr.nodes() {
            assert_eq!(csr.degree(v), 0);
            assert_eq!(csr.neighbors(v).count(), 0);
        }
    }
}
