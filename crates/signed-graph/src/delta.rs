//! Live edge mutations over a built [`crate::SignedGraph`]: the delta
//! layer the serving engine's incremental-update path is built on.
//!
//! The paper frames team formation as an online problem over an *evolving*
//! signed network, but [`crate::SignedGraph`] is deliberately immutable
//! once built (every algorithm is read-only over it). This module is the
//! bridge: an [`EdgeMutation`] names one edge-level change — insert,
//! remove, or sign flip — and [`crate::SignedGraph::apply_mutation`]
//! patches an owned graph in
//! place: adjacency lists keep their sorted order via binary-search
//! insertion/removal, the edge index and sign counters are updated, and no
//! derived state is recomputed. A sign flip additionally patches a
//! [`crate::csr::CsrGraph`] in place through [`crate::csr::CsrGraph::set_sign`]
//! (the CSR's `offsets`/`targets` lanes are untouched — only the sign lane
//! changes); inserts and removals restructure the CSR and need a rebuild.
//!
//! Mutations never grow or shrink the node set: an id outside
//! `0..node_count` is a typed [`crate::GraphError::NodeOutOfBounds`], which serving
//! layers surface as a `bad_request` instead of silently allocating users.
//! Removing the last edge of a node simply isolates it — the node stays
//! addressable and its compatibility rows stay well-defined (everything
//! unreachable).

use serde::{Deserialize, Serialize};

use crate::graph::NodeId;
use crate::sign::Sign;

/// One edge-level change to a signed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeMutation {
    /// Add the (previously absent) undirected edge `(u, v)` with `sign`.
    Insert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The label of the new edge.
        sign: Sign,
    },
    /// Remove the existing edge `(u, v)` (either sign).
    Remove {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Set the sign of the existing edge `(u, v)`. Setting the sign it
    /// already has is a no-op ([`EdgeChange::Unchanged`]), not an error.
    SetSign {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The label the edge should have.
        sign: Sign,
    },
}

impl EdgeMutation {
    /// The wire label of this mutation (`edge_insert` / `edge_remove` /
    /// `edge_set_sign`), matching the service protocol's `op` labels.
    pub fn op(&self) -> &'static str {
        match self {
            EdgeMutation::Insert { .. } => "edge_insert",
            EdgeMutation::Remove { .. } => "edge_remove",
            EdgeMutation::SetSign { .. } => "edge_set_sign",
        }
    }

    /// The edge endpoints the mutation touches.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeMutation::Insert { u, v, .. }
            | EdgeMutation::Remove { u, v }
            | EdgeMutation::SetSign { u, v, .. } => (u, v),
        }
    }
}

/// What [`SignedGraph::apply_mutation`] actually did.
///
/// [`SignedGraph::apply_mutation`]: crate::SignedGraph::apply_mutation
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationEffect {
    /// One touched endpoint (canonical order: `u <= v`).
    pub u: NodeId,
    /// The other touched endpoint.
    pub v: NodeId,
    /// The structural change.
    pub change: EdgeChange,
}

/// The structural change of one applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeChange {
    /// The edge was inserted with this sign.
    Inserted(Sign),
    /// The edge (with this sign) was removed.
    Removed(Sign),
    /// The edge's sign flipped.
    SignChanged {
        /// The sign before the mutation.
        old: Sign,
        /// The sign after the mutation.
        new: Sign,
    },
    /// A [`EdgeMutation::SetSign`] to the sign the edge already had.
    Unchanged(Sign),
}

impl MutationEffect {
    /// `true` when the graph actually changed (everything except
    /// [`EdgeChange::Unchanged`]) — the gate for cache invalidation: a no-op
    /// set-sign must not evict a single row.
    pub fn changed(&self) -> bool {
        !matches!(self.change, EdgeChange::Unchanged(_))
    }

    /// `true` when only an existing edge's sign changed — the case where a
    /// CSR view can be patched in place ([`crate::csr::CsrGraph::set_sign`])
    /// instead of rebuilt.
    pub fn is_sign_only(&self) -> bool {
        matches!(self.change, EdgeChange::SignChanged { .. })
    }

    /// The sign the edge has after the mutation (`None` once removed).
    pub fn sign_after(&self) -> Option<Sign> {
        match self.change {
            EdgeChange::Inserted(s) | EdgeChange::Unchanged(s) => Some(s),
            EdgeChange::SignChanged { new, .. } => Some(new),
            EdgeChange::Removed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edge_triples;
    use crate::csr::CsrGraph;
    use crate::error::GraphError;
    use crate::SignedGraph;

    fn base() -> SignedGraph {
        from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Negative),
            (0, 2, Sign::Positive),
            (2, 3, Sign::Positive),
        ])
    }

    /// Rebuilds a graph from `g`'s current edge list — the reference every
    /// patched graph must equal, shape-wise.
    fn rebuilt(g: &SignedGraph) -> SignedGraph {
        from_edge_triples(
            g.edges()
                .iter()
                .map(|e| (e.u.index(), e.v.index(), e.sign))
                .chain(std::iter::once((
                    g.node_count() - 1,
                    g.node_count() - 1,
                    Sign::Positive, // self-loop: ignored, pins the node count
                )))
                .collect::<Vec<_>>(),
        )
    }

    fn assert_same_shape(a: &SignedGraph, b: &SignedGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.positive_edge_count(), b.positive_edge_count());
        assert_eq!(a.negative_edge_count(), b.negative_edge_count());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u), "adjacency of {u}");
        }
        let mut ae: Vec<_> = a.edges().to_vec();
        let mut be: Vec<_> = b.edges().to_vec();
        ae.sort_by_key(|e| (e.u, e.v));
        be.sort_by_key(|e| (e.u, e.v));
        assert_eq!(ae, be);
    }

    #[test]
    fn insert_patches_adjacency_in_sorted_order() {
        let mut g = base();
        let effect = g
            .apply_mutation(&EdgeMutation::Insert {
                u: NodeId::new(3),
                v: NodeId::new(0),
                sign: Sign::Negative,
            })
            .unwrap();
        assert_eq!(effect.change, EdgeChange::Inserted(Sign::Negative));
        assert_eq!((effect.u, effect.v), (NodeId::new(0), NodeId::new(3)));
        assert!(effect.changed());
        assert_eq!(g.sign(NodeId::new(0), NodeId::new(3)), Some(Sign::Negative));
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.negative_edge_count(), 2);
        // Neighbour lists stay sorted (the traversal-determinism invariant).
        for u in g.nodes() {
            let order: Vec<usize> = g.neighbors(u).iter().map(|n| n.node.index()).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "adjacency of {u} must stay sorted");
        }
        assert_same_shape(&g, &rebuilt(&g));
    }

    #[test]
    fn remove_updates_index_and_counts() {
        let mut g = base();
        let effect = g
            .apply_mutation(&EdgeMutation::Remove {
                u: NodeId::new(2),
                v: NodeId::new(1),
            })
            .unwrap();
        assert_eq!(effect.change, EdgeChange::Removed(Sign::Negative));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.negative_edge_count(), 0);
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(2)));
        // The swap-removed edge's index entry still resolves.
        for e in g.edges() {
            assert_eq!(g.sign(e.u, e.v), Some(e.sign));
        }
        assert_same_shape(&g, &rebuilt(&g));
    }

    #[test]
    fn removing_the_last_edge_isolates_a_node() {
        let mut g = base();
        g.apply_mutation(&EdgeMutation::Remove {
            u: NodeId::new(2),
            v: NodeId::new(3),
        })
        .unwrap();
        assert_eq!(g.node_count(), 4, "isolated nodes stay in the graph");
        assert_eq!(g.degree(NodeId::new(3)), 0);
        assert_same_shape(&g, &rebuilt(&g));
    }

    #[test]
    fn set_sign_flips_everywhere_and_is_idempotent() {
        let mut g = base();
        let effect = g
            .apply_mutation(&EdgeMutation::SetSign {
                u: NodeId::new(1),
                v: NodeId::new(0),
                sign: Sign::Negative,
            })
            .unwrap();
        assert_eq!(
            effect.change,
            EdgeChange::SignChanged {
                old: Sign::Positive,
                new: Sign::Negative
            }
        );
        assert!(effect.is_sign_only());
        assert_eq!(g.sign(NodeId::new(0), NodeId::new(1)), Some(Sign::Negative));
        assert_eq!(g.negative_edge_count(), 2);
        // Both adjacency entries agree.
        assert!(g
            .neighbors(NodeId::new(0))
            .iter()
            .any(|n| n.node == NodeId::new(1) && n.sign == Sign::Negative));
        assert!(g
            .neighbors(NodeId::new(1))
            .iter()
            .any(|n| n.node == NodeId::new(0) && n.sign == Sign::Negative));
        // Same sign again: a no-op, not an error.
        let again = g
            .apply_mutation(&EdgeMutation::SetSign {
                u: NodeId::new(0),
                v: NodeId::new(1),
                sign: Sign::Negative,
            })
            .unwrap();
        assert_eq!(again.change, EdgeChange::Unchanged(Sign::Negative));
        assert!(!again.changed());
        assert_same_shape(&g, &rebuilt(&g));
    }

    #[test]
    fn typed_errors_for_bad_mutations() {
        let mut g = base();
        let unknown = NodeId::new(99);
        for m in [
            EdgeMutation::Insert {
                u: NodeId::new(0),
                v: unknown,
                sign: Sign::Positive,
            },
            EdgeMutation::Remove {
                u: unknown,
                v: NodeId::new(0),
            },
            EdgeMutation::SetSign {
                u: unknown,
                v: NodeId::new(0),
                sign: Sign::Positive,
            },
        ] {
            assert!(matches!(
                g.apply_mutation(&m),
                Err(GraphError::NodeOutOfBounds { .. })
            ));
        }
        assert!(matches!(
            g.apply_mutation(&EdgeMutation::Insert {
                u: NodeId::new(2),
                v: NodeId::new(2),
                sign: Sign::Positive,
            }),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            g.apply_mutation(&EdgeMutation::SetSign {
                u: NodeId::new(1),
                v: NodeId::new(1),
                sign: Sign::Positive,
            }),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            g.apply_mutation(&EdgeMutation::Insert {
                u: NodeId::new(0),
                v: NodeId::new(1),
                sign: Sign::Negative,
            }),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            g.apply_mutation(&EdgeMutation::Remove {
                u: NodeId::new(0),
                v: NodeId::new(3),
            }),
            Err(GraphError::MissingEdge(_, _))
        ));
        // Failed mutations leave the graph untouched.
        assert_eq!(g.edge_count(), 4);
        assert_same_shape(&g, &rebuilt(&g));
    }

    #[test]
    fn csr_sign_patch_matches_rebuild() {
        let mut g = base();
        let mut csr = CsrGraph::from_graph(&g);
        g.apply_mutation(&EdgeMutation::SetSign {
            u: NodeId::new(2),
            v: NodeId::new(3),
            sign: Sign::Negative,
        })
        .unwrap();
        csr.set_sign(NodeId::new(2), NodeId::new(3), Sign::Negative)
            .unwrap();
        let rebuilt = CsrGraph::from_graph(&g);
        for v in g.nodes() {
            let patched: Vec<_> = csr.neighbors(v).collect();
            let fresh: Vec<_> = rebuilt.neighbors(v).collect();
            assert_eq!(patched, fresh, "CSR row of {v}");
        }
        assert!(csr
            .set_sign(NodeId::new(0), NodeId::new(3), Sign::Positive)
            .is_err());
    }

    #[test]
    fn random_mutation_sequences_match_rebuild() {
        // A deterministic pseudo-random interleave of inserts, removals and
        // sign flips; after every step the patched graph must equal a graph
        // rebuilt from its own edge list.
        let mut g = from_edge_triples(
            (0..12)
                .map(|i| (i, (i + 1) % 12, Sign::Positive))
                .collect::<Vec<_>>(),
        );
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut applied = 0;
        for _ in 0..200 {
            let u = NodeId::new(next() % 12);
            let v = NodeId::new(next() % 12);
            let sign = if next() % 2 == 0 {
                Sign::Positive
            } else {
                Sign::Negative
            };
            let m = match next() % 3 {
                0 => EdgeMutation::Insert { u, v, sign },
                1 => EdgeMutation::Remove { u, v },
                _ => EdgeMutation::SetSign { u, v, sign },
            };
            if g.apply_mutation(&m).is_ok() {
                applied += 1;
            }
            assert_same_shape(&g, &rebuilt(&g));
        }
        assert!(applied > 50, "the interleave must exercise real mutations");
    }
}
