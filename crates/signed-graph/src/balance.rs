//! Structural balance primitives.
//!
//! A signed graph is *structurally balanced* (Cartwright–Harary) iff it
//! contains no cycle with an odd number of negative edges; equivalently, its
//! nodes can be split into two camps such that all edges inside a camp are
//! positive and all edges between camps are negative.
//!
//! The paper's SBP compatibility asks whether two nodes are connected by a
//! positive path `P` whose *induced subgraph* `G[P]` is structurally
//! balanced; the functions here supply that check.

use std::collections::VecDeque;

use crate::graph::{NodeId, SignedGraph};
use crate::sign::Sign;

/// The outcome of a balance check: either a witness two-colouring (the camp
/// of every checked node) or an unbalanced verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalanceResult {
    /// The (sub)graph is balanced; `camp[v]` gives the side (0/1) of each
    /// node that was part of the check, `None` for nodes outside it.
    Balanced {
        /// Camp assignment per node id of the *original* graph.
        camp: Vec<Option<bool>>,
    },
    /// The (sub)graph contains a cycle with an odd number of negative edges.
    Unbalanced,
}

impl BalanceResult {
    /// `true` when balanced.
    pub fn is_balanced(&self) -> bool {
        matches!(self, BalanceResult::Balanced { .. })
    }
}

/// Checks whether the whole graph is structurally balanced.
///
/// Runs the standard two-colouring BFS: crossing a positive edge keeps the
/// camp, crossing a negative edge flips it; a contradiction proves an odd
/// negative cycle. O(V + E).
pub fn check_balance(g: &SignedGraph) -> BalanceResult {
    let nodes: Vec<NodeId> = g.nodes().collect();
    check_balance_induced(g, &nodes)
}

/// `true` iff the whole graph is structurally balanced.
pub fn is_balanced(g: &SignedGraph) -> bool {
    check_balance(g).is_balanced()
}

/// Checks structural balance of the subgraph induced by `nodes`.
///
/// Only edges with *both* endpoints in `nodes` are considered — exactly the
/// `G[P] = (P, E[P])` of the paper's Definition 3.4.
pub fn check_balance_induced(g: &SignedGraph, nodes: &[NodeId]) -> BalanceResult {
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &v in nodes {
        in_set[v.index()] = true;
    }
    let mut camp: Vec<Option<bool>> = vec![None; n];
    let mut queue = VecDeque::new();
    for &start in nodes {
        if camp[start.index()].is_some() {
            continue;
        }
        camp[start.index()] = Some(false);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let cu = camp[u.index()].expect("enqueued nodes are coloured");
            for nb in g.neighbors(u) {
                let v = nb.node;
                if !in_set[v.index()] {
                    continue;
                }
                let expected = match nb.sign {
                    Sign::Positive => cu,
                    Sign::Negative => !cu,
                };
                match camp[v.index()] {
                    None => {
                        camp[v.index()] = Some(expected);
                        queue.push_back(v);
                    }
                    Some(cv) if cv != expected => return BalanceResult::Unbalanced,
                    Some(_) => {}
                }
            }
        }
    }
    BalanceResult::Balanced { camp }
}

/// `true` iff the subgraph induced by `nodes` is structurally balanced.
pub fn is_balanced_induced(g: &SignedGraph, nodes: &[NodeId]) -> bool {
    check_balance_induced(g, nodes).is_balanced()
}

/// `true` iff `path` (a node sequence) is a *structurally balanced path* in
/// the paper's sense: the subgraph induced by its node set is balanced.
///
/// The path itself does not have to be re-validated here; callers that need
/// that guarantee should combine with [`SignedGraph::is_simple_path`].
pub fn is_structurally_balanced_path(g: &SignedGraph, path: &[NodeId]) -> bool {
    is_balanced_induced(g, path)
}

/// `true` iff a triangle `(a, b, c)` (all three edges must exist) is balanced:
/// the product of its edge signs is positive.
///
/// Returns `None` if any of the three edges is missing.
pub fn triangle_is_balanced(g: &SignedGraph, a: NodeId, b: NodeId, c: NodeId) -> Option<bool> {
    let s1 = g.sign(a, b)?;
    let s2 = g.sign(b, c)?;
    let s3 = g.sign(a, c)?;
    Some((s1 * s2 * s3).is_positive())
}

/// Counts balanced and unbalanced triangles in the graph.
///
/// Returns `(balanced, unbalanced)`. O(sum of deg²) — intended for the small
/// and mid-size datasets used in tests, examples and dataset statistics.
pub fn triangle_census(g: &SignedGraph) -> (usize, usize) {
    let mut balanced = 0usize;
    let mut unbalanced = 0usize;
    for e in g.edges() {
        let (u, v) = (e.u, e.v);
        // Iterate over the smaller adjacency list, check membership in the other.
        let (a, b) = if g.degree(u) <= g.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        for nb in g.neighbors(a) {
            let w = nb.node;
            // Count each triangle once: enforce ordering u < v < w over indices.
            if w.index() > v.index() {
                if let Some(sw) = g.sign(b, w) {
                    let product = e.sign * nb.sign * sw;
                    if product.is_positive() {
                        balanced += 1;
                    } else {
                        unbalanced += 1;
                    }
                }
            }
        }
    }
    (balanced, unbalanced)
}

/// Number of edges that violate a given two-camp partition: positive edges
/// across camps plus negative edges inside a camp.
///
/// `camp[v]` gives the side of node `v`; nodes with `None` are ignored.
pub fn frustration_count(g: &SignedGraph, camp: &[Option<bool>]) -> usize {
    g.edges()
        .iter()
        .filter(|e| match (camp[e.u.index()], camp[e.v.index()]) {
            (Some(cu), Some(cv)) => match e.sign {
                Sign::Positive => cu != cv,
                Sign::Negative => cu == cv,
            },
            _ => false,
        })
        .count()
}

/// A greedy local-search estimate of the frustration index: the minimum
/// number of edges whose removal (or sign flip) would make the graph
/// balanced. Starts from a BFS colouring that ignores violations and then
/// moves single nodes while improvements exist. Deterministic.
///
/// This is an upper bound on the true frustration index (which is NP-hard to
/// compute); it is exposed for dataset diagnostics and the ablation benches.
pub fn greedy_frustration_index(g: &SignedGraph) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    // Initial colouring: BFS that follows balance rules but does not abort on
    // contradictions (first colour assigned wins).
    let mut camp = vec![None::<bool>; n];
    let mut queue = VecDeque::new();
    for start in g.nodes() {
        if camp[start.index()].is_some() {
            continue;
        }
        camp[start.index()] = Some(false);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let cu = camp[u.index()].unwrap();
            for nb in g.neighbors(u) {
                if camp[nb.node.index()].is_none() {
                    camp[nb.node.index()] = Some(match nb.sign {
                        Sign::Positive => cu,
                        Sign::Negative => !cu,
                    });
                    queue.push_back(nb.node);
                }
            }
        }
    }
    // Local search: flip a node's camp when it strictly reduces violations.
    let mut improved = true;
    let mut guard = 0usize;
    while improved && guard < 4 * n {
        improved = false;
        guard += 1;
        for v in g.nodes() {
            let cv = camp[v.index()].unwrap();
            let mut delta: i64 = 0;
            for nb in g.neighbors(v) {
                let cu = camp[nb.node.index()].unwrap();
                let violated_now = match nb.sign {
                    Sign::Positive => cu != cv,
                    Sign::Negative => cu == cv,
                };
                let violated_flip = match nb.sign {
                    Sign::Positive => cu == cv,
                    Sign::Negative => cu != cv,
                };
                delta += violated_flip as i64 - violated_now as i64;
            }
            if delta < 0 {
                camp[v.index()] = Some(!cv);
                improved = true;
            }
        }
    }
    frustration_count(g, &camp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edge_triples, GraphBuilder};

    /// Balanced square: two camps {0,1} and {2,3}.
    fn balanced_square() -> SignedGraph {
        from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (2, 3, Sign::Positive),
            (0, 2, Sign::Negative),
            (1, 3, Sign::Negative),
        ])
    }

    /// The classic unbalanced triangle: one negative edge.
    fn unbalanced_triangle() -> SignedGraph {
        from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Positive),
            (0, 2, Sign::Negative),
        ])
    }

    #[test]
    fn balanced_graph_detection() {
        assert!(is_balanced(&balanced_square()));
        assert!(!is_balanced(&unbalanced_triangle()));
        // All-positive graphs are trivially balanced.
        let g = from_edge_triples(vec![(0, 1, Sign::Positive), (1, 2, Sign::Positive)]);
        assert!(is_balanced(&g));
        // Empty graph balanced.
        assert!(is_balanced(&GraphBuilder::new().build()));
    }

    #[test]
    fn camp_assignment_is_consistent() {
        let g = balanced_square();
        let BalanceResult::Balanced { camp } = check_balance(&g) else {
            panic!("expected balanced");
        };
        assert_eq!(frustration_count(&g, &camp), 0);
        assert_eq!(camp[0], camp[1]);
        assert_eq!(camp[2], camp[3]);
        assert_ne!(camp[0], camp[2]);
    }

    #[test]
    fn induced_subgraph_balance() {
        // Figure 1(a) of the paper: u=0, x1=1, x2=2, x3=3, x4=4, v=5.
        // Edges: (u,x1,-), (x1,v,+), (u,x2,+), (x2,x1,+), (x2,x3,+), (x3,x4,+), (x4,v,+)
        let g = from_edge_triples(vec![
            (0, 1, Sign::Negative),
            (1, 5, Sign::Positive),
            (0, 2, Sign::Positive),
            (2, 1, Sign::Positive),
            (2, 3, Sign::Positive),
            (3, 4, Sign::Positive),
            (4, 5, Sign::Positive),
        ]);
        // The path (u,x2,x1,v) is positive but its induced subgraph contains
        // the unbalanced triangle (u,x1,x2): not structurally balanced.
        let p_bad = [
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(1),
            NodeId::new(5),
        ];
        assert!(!is_structurally_balanced_path(&g, &p_bad));
        // The path (u,x2,x3,x4,v) is positive and structurally balanced.
        let p_good = [
            NodeId::new(0),
            NodeId::new(2),
            NodeId::new(3),
            NodeId::new(4),
            NodeId::new(5),
        ];
        assert!(is_structurally_balanced_path(&g, &p_good));
        assert_eq!(g.path_sign(&p_good).unwrap(), Sign::Positive);
    }

    #[test]
    fn triangle_checks() {
        let g = unbalanced_triangle();
        assert_eq!(
            triangle_is_balanced(&g, NodeId::new(0), NodeId::new(1), NodeId::new(2)),
            Some(false)
        );
        let g2 = from_edge_triples(vec![
            (0, 1, Sign::Negative),
            (1, 2, Sign::Negative),
            (0, 2, Sign::Positive),
        ]);
        assert_eq!(
            triangle_is_balanced(&g2, NodeId::new(0), NodeId::new(1), NodeId::new(2)),
            Some(true)
        );
        // Missing edge.
        let g3 = from_edge_triples(vec![(0, 1, Sign::Positive), (1, 2, Sign::Positive)]);
        assert_eq!(
            triangle_is_balanced(&g3, NodeId::new(0), NodeId::new(1), NodeId::new(2)),
            None
        );
    }

    #[test]
    fn census_counts_each_triangle_once() {
        let g = unbalanced_triangle();
        assert_eq!(triangle_census(&g), (0, 1));
        let g2 = from_edge_triples(vec![
            (0, 1, Sign::Positive),
            (1, 2, Sign::Positive),
            (0, 2, Sign::Positive),
            (2, 3, Sign::Negative),
            (1, 3, Sign::Negative),
        ]);
        // Triangles: (0,1,2) balanced; (1,2,3) has +,-,- = balanced.
        assert_eq!(triangle_census(&g2), (2, 0));
    }

    #[test]
    fn frustration_on_balanced_graph_is_zero() {
        assert_eq!(greedy_frustration_index(&balanced_square()), 0);
        assert_eq!(greedy_frustration_index(&GraphBuilder::new().build()), 0);
    }

    #[test]
    fn frustration_on_unbalanced_triangle_is_one() {
        assert_eq!(greedy_frustration_index(&unbalanced_triangle()), 1);
    }

    #[test]
    fn frustration_count_partial_coloring() {
        let g = unbalanced_triangle();
        // Only nodes 0 and 1 coloured: the single positive edge between them,
        // same camp → no violation; edges touching node 2 are ignored.
        let camp = vec![Some(false), Some(false), None];
        assert_eq!(frustration_count(&g, &camp), 0);
        let camp = vec![Some(false), Some(true), None];
        assert_eq!(frustration_count(&g, &camp), 1);
    }
}
