//! Property-based tests for the signed-graph substrate.

use proptest::prelude::*;
use signed_graph::balance::{check_balance, frustration_count, is_balanced};
use signed_graph::builder::from_edge_triples;
use signed_graph::components::{connected_components, is_connected, largest_component_subgraph};
use signed_graph::csr::CsrGraph;
use signed_graph::generators::{erdos_renyi_signed, social_network, SocialNetworkConfig};
use signed_graph::io::{read_edge_list, write_edge_list};
use signed_graph::transform::{to_unsigned, UnsignedTransform};
use signed_graph::traversal::{bfs_distances, bfs_distances_csr, UNREACHABLE};
use signed_graph::{NodeId, Sign, SignedGraph};

/// Strategy: a random small signed graph described by edge triples.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = SignedGraph> {
    let nodes = 2..=max_nodes;
    nodes.prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, prop::bool::ANY), 0..=max_edges).prop_map(
            move |triples| {
                let mut full: Vec<(usize, usize, Sign)> = triples
                    .into_iter()
                    .filter(|(u, v, _)| u != v)
                    .map(|(u, v, neg)| (u, v, if neg { Sign::Negative } else { Sign::Positive }))
                    .collect();
                // Make the node count explicit by adding a self-documenting edge
                // anchor at the last node when it would otherwise be absent.
                full.push((0, n - 1, Sign::Positive));
                from_edge_triples(full)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(20, 60)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
        prop_assert_eq!(
            g.positive_edge_count() + g.negative_edge_count(),
            g.edge_count()
        );
    }

    #[test]
    fn sign_lookup_matches_adjacency(g in arb_graph(20, 60)) {
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                prop_assert_eq!(g.sign(v, nb.node), Some(nb.sign));
                prop_assert_eq!(g.sign(nb.node, v), Some(nb.sign));
            }
        }
    }

    #[test]
    fn csr_bfs_equals_adjacency_bfs(g in arb_graph(25, 80)) {
        let csr = CsrGraph::from_graph(&g);
        for v in g.nodes().take(5) {
            prop_assert_eq!(bfs_distances(&g, v), bfs_distances_csr(&csr, v));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in arb_graph(25, 80)) {
        let d = bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let (du, dv) = (d[e.u.index()], d[e.v.index()]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent nodes differ by more than 1");
            } else {
                // Adjacent nodes are in the same component.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(25, 60)) {
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
        // Every edge stays within one component.
        for e in g.edges() {
            prop_assert_eq!(c.component_of[e.u.index()], c.component_of[e.v.index()]);
        }
        let (sub, mapping) = largest_component_subgraph(&g);
        prop_assert!(is_connected(&sub));
        prop_assert_eq!(sub.node_count(), mapping.len());
        prop_assert_eq!(sub.node_count(), *c.sizes.iter().max().unwrap_or(&0));
    }

    #[test]
    fn balanced_verdict_matches_zero_frustration_witness(g in arb_graph(15, 40)) {
        match check_balance(&g) {
            signed_graph::balance::BalanceResult::Balanced { camp } => {
                prop_assert_eq!(frustration_count(&g, &camp), 0);
            }
            signed_graph::balance::BalanceResult::Unbalanced => {
                // An unbalanced graph must contain at least one negative edge.
                prop_assert!(g.negative_edge_count() > 0);
            }
        }
    }

    #[test]
    fn all_positive_graphs_are_balanced(
        n in 2usize..15,
        edges in proptest::collection::vec((0usize..15, 0usize..15), 0..40)
    ) {
        let triples: Vec<_> = edges
            .into_iter()
            .filter(|(u, v)| u != v && *u < n && *v < n)
            .map(|(u, v)| (u, v, Sign::Positive))
            .collect();
        let g = from_edge_triples(triples.into_iter().chain([(0, n - 1, Sign::Positive)]));
        prop_assert!(is_balanced(&g));
    }

    #[test]
    fn unsigned_transforms_preserve_or_shrink_edges(g in arb_graph(20, 60)) {
        let ignored = to_unsigned(&g, UnsignedTransform::IgnoreSigns);
        let deleted = to_unsigned(&g, UnsignedTransform::DeleteNegative);
        prop_assert_eq!(ignored.edge_count(), g.edge_count());
        prop_assert_eq!(ignored.negative_edge_count(), 0);
        prop_assert_eq!(deleted.edge_count(), g.positive_edge_count());
        prop_assert_eq!(deleted.negative_edge_count(), 0);
        prop_assert_eq!(ignored.node_count(), g.node_count());
        prop_assert_eq!(deleted.node_count(), g.node_count());
    }

    #[test]
    fn io_round_trip_preserves_edges(g in arb_graph(20, 60)) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(parsed.graph.edge_count(), g.edge_count());
        for e in g.edges() {
            let u = parsed.node_for_original(e.u.index() as u64).unwrap();
            let v = parsed.node_for_original(e.v.index() as u64).unwrap();
            prop_assert_eq!(parsed.graph.sign(u, v), Some(e.sign));
        }
    }

    #[test]
    fn path_sign_is_product_of_edge_signs(g in arb_graph(15, 40)) {
        // Walk a BFS tree path and verify the sign product manually.
        let source = NodeId::new(0);
        let d = bfs_distances(&g, source);
        for v in g.nodes() {
            if d[v.index()] != UNREACHABLE && v != source {
                if let Some(path) = signed_graph::traversal::shortest_path(&g, source, v) {
                    let manual = Sign::product(
                        path.windows(2).map(|w| g.sign(w[0], w[1]).unwrap()),
                    );
                    prop_assert_eq!(g.path_sign(&path).unwrap(), manual);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn social_network_generator_respects_config(
        nodes in 10usize..120,
        extra in 0usize..200,
        neg in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let cfg = SocialNetworkConfig {
            nodes,
            edges: nodes - 1 + extra,
            negative_fraction: neg,
            seed,
            ..Default::default()
        };
        let g = social_network(&cfg);
        prop_assert_eq!(g.node_count(), nodes);
        prop_assert!(is_connected(&g));
        prop_assert!(g.edge_count() >= nodes - 1);
        prop_assert!(g.edge_count() <= cfg.edges);
        let got = g.negative_edge_fraction();
        prop_assert!((got - neg).abs() <= 1.5 / g.edge_count() as f64 + 1e-9);
    }

    #[test]
    fn erdos_renyi_is_deterministic(seed in 0u64..500) {
        let a = erdos_renyi_signed(40, 100, 0.3, seed);
        let b = erdos_renyi_signed(40, 100, 0.3, seed);
        prop_assert_eq!(a.edges(), b.edges());
    }
}
