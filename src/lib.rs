//! Umbrella crate for the *Forming Compatible Teams in Signed Networks*
//! reproduction: re-exports every workspace crate under one root so the
//! repo-level `examples/` and `tests/` can depend on a single package.
//!
//! The substance lives in the member crates:
//!
//! * [`signed_graph`] — the signed-graph substrate.
//! * [`tfsn_skills`] — skills, tasks, and workload generation.
//! * [`tfsn_core`] — compatibility relations and team-formation solvers.
//! * [`tfsn_datasets`] — the paper's dataset emulations and loaders.
//! * [`tfsn_experiments`] — the table/figure reproduction harness.
//! * [`tfsn_client`] — the protocol wire types and the remote HTTP client.
//! * [`tfsn_engine`] — the cached, parallel team-query serving engine and
//!   the `tfsn` CLI.

#![forbid(unsafe_code)]

pub use signed_graph;
pub use tfsn_client;
pub use tfsn_core;
pub use tfsn_datasets;
pub use tfsn_engine;
pub use tfsn_experiments;
pub use tfsn_skills;
